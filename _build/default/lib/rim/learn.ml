let check_sample = function
  | [] -> invalid_arg "Learn: empty sample"
  | r :: rest ->
      let m = Prefs.Ranking.length r in
      List.iter
        (fun r' ->
          if Prefs.Ranking.length r' <> m then invalid_arg "Learn: unequal lengths")
        rest;
      m

let weights_or_ones ?weights n =
  match weights with
  | None -> Array.make n 1.
  | Some w ->
      if Array.length w <> n then invalid_arg "Learn: weights length mismatch";
      w

let borda_center ?weights sample =
  let m = check_sample sample in
  let n = List.length sample in
  let w = weights_or_ones ?weights n in
  let score = Array.make m 0. in
  let wsum = Array.fold_left ( +. ) 0. w in
  List.iteri
    (fun k r ->
      for p = 0 to m - 1 do
        let item = Prefs.Ranking.item_at r p in
        score.(item) <- score.(item) +. (w.(k) *. float_of_int p)
      done)
    sample;
  ignore wsum;
  let items = Array.init m (fun i -> i) in
  Array.sort (fun a b -> compare score.(a) score.(b)) items;
  Prefs.Ranking.of_array items

let fit_phi ~center ?weights sample =
  let m = check_sample sample in
  let n = List.length sample in
  let w = weights_or_ones ?weights n in
  let wsum = Array.fold_left ( +. ) 0. w in
  if wsum <= 0. then 0.5
  else begin
    let mean_d = ref 0. in
    List.iteri
      (fun k r ->
        mean_d :=
          !mean_d +. (w.(k) *. float_of_int (Prefs.Ranking.kendall_tau center r)))
      sample;
    let mean_d = !mean_d /. wsum in
    if mean_d <= 0. then 0.
    else if mean_d >= Mallows.expected_distance ~m ~phi:1. then 1.
    else begin
      let lo = ref 0. and hi = ref 1. in
      for _ = 1 to 60 do
        let mid = (!lo +. !hi) /. 2. in
        if Mallows.expected_distance ~m ~phi:mid < mean_d then lo := mid else hi := mid
      done;
      (!lo +. !hi) /. 2.
    end
  end

let fit sample =
  let center = borda_center sample in
  Mallows.make ~center ~phi:(fit_phi ~center sample)

type em_report = {
  mixture : Mixture.t;
  log_likelihood : float;
  iterations : int;
}

let log_likelihood mix sample =
  List.fold_left (fun acc r -> acc +. Mixture.log_prob mix r) 0. sample

let fit_mixture ?(max_iter = 50) ?(tol = 1e-6) ~k ~rng sample =
  let _m = check_sample sample in
  if k < 1 then invalid_arg "Learn.fit_mixture: k < 1";
  let arr = Array.of_list sample in
  let n = Array.length arr in
  (* Initialize with k distinct observed rankings (or repeats if fewer). *)
  let idx = Util.Rng.permutation rng n in
  let init_centers = Array.init k (fun i -> arr.(idx.(i mod n))) in
  let comps =
    ref
      (Array.map (fun c -> Mallows.make ~center:c ~phi:0.5) init_centers)
  in
  let weights = ref (Array.make k (1. /. float_of_int k)) in
  let mix () = Mixture.make (List.combine (Array.to_list !weights) (Array.to_list !comps)) in
  let prev_ll = ref neg_infinity in
  let iters = ref 0 in
  (try
     for it = 1 to max_iter do
       iters := it;
       (* E-step: responsibilities. *)
       let resp = Array.make_matrix k n 0. in
       Array.iteri
         (fun j r ->
           let lps =
             Array.mapi (fun c comp -> log !weights.(c) +. Mallows.log_prob comp r) !comps
           in
           let lse = Util.Logspace.log_sum_exp lps in
           Array.iteri (fun c lp -> resp.(c).(j) <- exp (lp -. lse)) lps)
         arr;
       (* M-step. *)
       let comps' =
         Array.init k (fun c ->
             let wts = resp.(c) in
             let total = Array.fold_left ( +. ) 0. wts in
             if total < 1e-12 then !comps.(c)
             else
               let center = borda_center ~weights:wts sample in
               let phi = fit_phi ~center ~weights:wts sample in
               Mallows.make ~center ~phi)
       in
       let weights' =
         Array.init k (fun c ->
             Array.fold_left ( +. ) 0. resp.(c) /. float_of_int n)
       in
       comps := comps';
       weights := weights';
       let ll = log_likelihood (mix ()) sample in
       if abs_float (ll -. !prev_ll) < tol *. (1. +. abs_float ll) then begin
         prev_ll := ll;
         raise Exit
       end;
       prev_ll := ll
     done
   with Exit -> ());
  let mixture = mix () in
  { mixture; log_likelihood = log_likelihood mixture sample; iterations = !iters }

let fit_from_pairwise ?(iters = 5) ?(samples_per_obs = 20) ~m ~rng observations =
  (* Keep observations with a consistent (acyclic) pair set. *)
  let partial_orders =
    List.filter_map
      (fun pairs ->
        match Prefs.Partial_order.make_with_items ~items:[] ~edges:pairs with
        | po -> Some po
        | exception Invalid_argument _ -> None)
      observations
  in
  if partial_orders = [] then
    invalid_arg "Learn.fit_from_pairwise: no consistent observation";
  List.iter
    (fun po ->
      List.iter
        (fun x ->
          if x < 0 || x >= m then
            invalid_arg "Learn.fit_from_pairwise: item out of range")
        (Prefs.Partial_order.items po))
    partial_orders;
  (* Initial center: pairwise Borda (wins minus losses). *)
  let score = Array.make m 0 in
  List.iter
    (List.iter (fun (a, b) ->
         score.(a) <- score.(a) + 1;
         score.(b) <- score.(b) - 1))
    observations;
  let items = Array.init m (fun i -> i) in
  Array.sort (fun a b -> compare score.(b) score.(a)) items;
  let model = ref (Mallows.make ~center:(Prefs.Ranking.of_array items) ~phi:0.5) in
  for _ = 1 to iters do
    let completions =
      List.concat_map
        (fun po ->
          let amp = Amp.make !model po in
          List.init samples_per_obs (fun _ -> Amp.sample amp rng))
        partial_orders
    in
    let center = borda_center completions in
    let phi = fit_phi ~center completions in
    model := Mallows.make ~center ~phi
  done;
  !model
