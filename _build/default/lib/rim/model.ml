type t = { sigma : Prefs.Ranking.t; pi : float array array }

let make ~sigma ~pi =
  let m = Prefs.Ranking.length sigma in
  if Array.length pi <> m then invalid_arg "Rim.Model.make: pi has wrong length";
  Array.iteri
    (fun i row ->
      if Array.length row <> i + 1 then
        invalid_arg "Rim.Model.make: pi row length must be i+1";
      let sum = Array.fold_left ( +. ) 0. row in
      Array.iter
        (fun p -> if p < 0. then invalid_arg "Rim.Model.make: negative probability")
        row;
      if abs_float (sum -. 1.) > 1e-9 then
        invalid_arg "Rim.Model.make: pi row does not sum to 1")
    pi;
  { sigma; pi = Array.map Array.copy pi }

let sigma t = t.sigma
let m t = Prefs.Ranking.length t.sigma
let pi t i j = t.pi.(i).(j)

let insertion_positions t r =
  let n = m t in
  if Prefs.Ranking.length r <> n then
    invalid_arg "Rim.Model.insertion_positions: wrong length";
  let pos = Array.make n 0 in
  let sig_pos_in_r =
    Array.init n (fun i -> Prefs.Ranking.position_of r (Prefs.Ranking.item_at t.sigma i))
  in
  for i = 0 to n - 1 do
    let j = ref 0 in
    for k = 0 to i - 1 do
      if sig_pos_in_r.(k) < sig_pos_in_r.(i) then incr j
    done;
    pos.(i) <- !j
  done;
  pos

let prob t r =
  let js = insertion_positions t r in
  let p = ref 1. in
  Array.iteri (fun i j -> p := !p *. t.pi.(i).(j)) js;
  !p

let log_prob t r =
  let js = insertion_positions t r in
  let lp = ref 0. in
  Array.iteri
    (fun i j ->
      let p = t.pi.(i).(j) in
      lp := !lp +. (if p > 0. then log p else Util.Logspace.neg_inf))
    js;
  !lp

let sample t rng =
  let n = m t in
  (* Build into an int list-as-array with shifting; n is small enough that
     O(m^2) insertion is fine and allocation-free. *)
  let buf = Array.make n 0 in
  for i = 0 to n - 1 do
    let j = Util.Rng.categorical rng t.pi.(i) in
    Array.blit buf j buf (j + 1) (i - j);
    buf.(j) <- Prefs.Ranking.item_at t.sigma i
  done;
  Prefs.Ranking.of_array buf

let uniform sigma =
  let n = Prefs.Ranking.length sigma in
  let pi = Array.init n (fun i -> Array.make (i + 1) (1. /. float_of_int (i + 1))) in
  { sigma; pi }

let pp ppf t =
  Format.fprintf ppf "RIM(\u{03C3}=%a, m=%d)" Prefs.Ranking.pp t.sigma (m t)
