(** Fitting Mallows models and mixtures from observed rankings.

    Stands in for the external learning tool the paper uses ([26]):
    the experiments only need (σ, φ) components, which we estimate with
    weighted Borda centers, a Kendall-distance moment match for φ, and
    EM for mixtures. *)

val borda_center : ?weights:float array -> Prefs.Ranking.t list -> Prefs.Ranking.t
(** Center estimate: items sorted by (weighted) mean position.
    Requires a non-empty sample of equal-length rankings. *)

val fit_phi : center:Prefs.Ranking.t -> ?weights:float array -> Prefs.Ranking.t list -> float
(** Moment estimate of φ: matches the (weighted) mean Kendall distance
    to {!Mallows.expected_distance} by bisection. Clamped to [0, 1]. *)

val fit : Prefs.Ranking.t list -> Mallows.t
(** Single-component fit: Borda center + φ moment match. *)

type em_report = {
  mixture : Mixture.t;
  log_likelihood : float;
  iterations : int;
}

val fit_mixture :
  ?max_iter:int ->
  ?tol:float ->
  k:int ->
  rng:Util.Rng.t ->
  Prefs.Ranking.t list ->
  em_report
(** EM for a [k]-component Mallows mixture: responsibilities from current
    component likelihoods, then per-component weighted Borda center and
    φ re-estimation. Initialization picks [k] distinct observed rankings
    as centers. *)

val fit_from_pairwise :
  ?iters:int ->
  ?samples_per_obs:int ->
  m:int ->
  rng:Util.Rng.t ->
  (int * int) list list ->
  Mallows.t
(** Fit a single Mallows model from *pairwise* observations — each
    observation is the set of preference pairs [(a, b)] ("a over b") one
    judge revealed. Follows the AMP-imputation idea of Lu & Boutilier:
    starting from a pairwise-Borda center, repeatedly (default
    [iters = 5]) complete each observation's partial order into
    [samples_per_obs] full rankings with AMP under the current model and
    refit (center, φ) on the completions. Observations whose pairs are
    cyclic are ignored; raises [Invalid_argument] when none is usable. *)
