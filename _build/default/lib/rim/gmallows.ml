type t = {
  center : Prefs.Ranking.t;
  phis : float array;
  mutable rim : Model.t option;
}

let make ~center ~phis =
  if Array.length phis <> Prefs.Ranking.length center then
    invalid_arg "Gmallows.make: need one phi per item";
  Array.iter
    (fun p -> if p < 0. || p > 1. then invalid_arg "Gmallows.make: phi out of [0,1]")
    phis;
  { center; phis = Array.copy phis; rim = None }

let uniform_phi ~center ~phi =
  make ~center ~phis:(Array.make (Prefs.Ranking.length center) phi)

let center t = t.center
let phis t = Array.copy t.phis
let m t = Prefs.Ranking.length t.center

let to_rim t =
  match t.rim with
  | Some r -> r
  | None ->
      let n = m t in
      let pi =
        Array.init n (fun i ->
            let phi = t.phis.(i) in
            if phi = 0. then Array.init (i + 1) (fun j -> if j = i then 1. else 0.)
            else begin
              let row = Array.init (i + 1) (fun j -> phi ** float_of_int (i - j)) in
              let sum = Array.fold_left ( +. ) 0. row in
              Array.map (fun w -> w /. sum) row
            end)
      in
      let r = Model.make ~sigma:t.center ~pi in
      t.rim <- Some r;
      r

let prob t r = Model.prob (to_rim t) r
let log_prob t r = Model.log_prob (to_rim t) r
let sample t rng = Model.sample (to_rim t) rng

let pp ppf t =
  Format.fprintf ppf "GMAL(%a, [%s])" Prefs.Ranking.pp t.center
    (String.concat "," (List.map (Printf.sprintf "%.2g") (Array.to_list t.phis)))
