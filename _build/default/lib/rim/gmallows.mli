(** The generalized Mallows model of Fligner & Verducci — the "beyond
    plain Mallows" RIM instance the paper's conclusions point to ([9]).

    GMAL(σ, φ₁…φₘ) gives each insertion step its own dispersion:
    [Π(i, j) ∝ φᵢ^(i-j)]. With all φᵢ equal it coincides with MAL(σ, φ);
    small φᵢ at early steps concentrate the top of the ranking while
    leaving the tail noisy (and vice versa). Because it is a RIM, every
    exact solver in the library applies to it unchanged. *)

type t

val make : center:Prefs.Ranking.t -> phis:float array -> t
(** [phis] has one dispersion per item of [center] (the first entry is
    unused by the insertion process but kept for uniformity); each must
    be in [0, 1]. Raises [Invalid_argument] otherwise. *)

val uniform_phi : center:Prefs.Ranking.t -> phi:float -> t
(** The plain Mallows special case. *)

val center : t -> Prefs.Ranking.t
val phis : t -> float array
val m : t -> int
val to_rim : t -> Model.t
val prob : t -> Prefs.Ranking.t -> float
val log_prob : t -> Prefs.Ranking.t -> float
val sample : t -> Util.Rng.t -> Prefs.Ranking.t
val pp : Format.formatter -> t -> unit
