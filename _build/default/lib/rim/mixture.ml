type t = { weights : float array; comps : Mallows.t array }

let make = function
  | [] -> invalid_arg "Mixture.make: empty"
  | l ->
      let weights = Array.of_list (List.map fst l) in
      let comps = Array.of_list (List.map snd l) in
      Array.iter (fun w -> if w < 0. then invalid_arg "Mixture.make: negative weight") weights;
      let total = Array.fold_left ( +. ) 0. weights in
      if total <= 0. then invalid_arg "Mixture.make: zero total weight";
      let m0 = Mallows.m comps.(0) in
      Array.iter
        (fun c -> if Mallows.m c <> m0 then invalid_arg "Mixture.make: mismatched domains")
        comps;
      { weights = Array.map (fun w -> w /. total) weights; comps }

let components t = Array.to_list (Array.map2 (fun w c -> (w, c)) t.weights t.comps)
let n_components t = Array.length t.comps
let m t = Mallows.m t.comps.(0)

let sample_component t rng =
  let i = Util.Rng.categorical rng t.weights in
  (i, t.comps.(i))

let sample t rng =
  let _, c = sample_component t rng in
  Mallows.sample c rng

let log_prob t r =
  Util.Logspace.log_sum_exp
    (Array.mapi (fun i c -> log t.weights.(i) +. Mallows.log_prob c r) t.comps)

let prob t r = exp (log_prob t r)

let pp ppf t =
  Format.fprintf ppf "@[<v>mixture of %d:@ %a@]" (n_components t)
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (w, c) -> Format.fprintf ppf "%.3f * %a" w Mallows.pp c))
    (components t)
