lib/rim/model.mli: Format Prefs Util
