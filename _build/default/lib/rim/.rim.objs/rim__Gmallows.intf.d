lib/rim/gmallows.mli: Format Model Prefs Util
