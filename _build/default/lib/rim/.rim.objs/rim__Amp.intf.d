lib/rim/amp.mli: Mallows Prefs Util
