lib/rim/learn.ml: Amp Array List Mallows Mixture Prefs Util
