lib/rim/amp.ml: Array Hashtbl List Mallows Option Prefs Util
