lib/rim/learn.mli: Mallows Mixture Prefs Util
