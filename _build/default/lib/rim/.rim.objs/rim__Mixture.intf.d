lib/rim/mixture.mli: Format Mallows Prefs Util
