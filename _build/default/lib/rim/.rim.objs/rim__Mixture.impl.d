lib/rim/mixture.ml: Array Format List Mallows Util
