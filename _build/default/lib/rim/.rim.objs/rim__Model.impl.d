lib/rim/model.ml: Array Format Prefs Util
