lib/rim/gmallows.ml: Array Format List Model Prefs Printf String
