lib/rim/mallows.ml: Array Format Model Prefs Util
