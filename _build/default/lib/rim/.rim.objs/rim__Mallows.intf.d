lib/rim/mallows.mli: Format Model Prefs Util
