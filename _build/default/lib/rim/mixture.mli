(** Finite mixtures of Mallows models, used for the MovieLens and
    CrowdRank surrogates (paper §6.1). *)

type t

val make : (float * Mallows.t) list -> t
(** [make [(w1, m1); ...]] normalizes the nonnegative weights.
    All components must share the same item domain size.
    Raises [Invalid_argument] on an empty list or all-zero weights. *)

val components : t -> (float * Mallows.t) list
val n_components : t -> int
val m : t -> int
val sample_component : t -> Util.Rng.t -> int * Mallows.t
val sample : t -> Util.Rng.t -> Prefs.Ranking.t
val log_prob : t -> Prefs.Ranking.t -> float
val prob : t -> Prefs.Ranking.t -> float
val pp : Format.formatter -> t -> unit
