(** AMP — the Approximate Mallows Posterior sampler of Lu & Boutilier,
    conditioned on a partial order (paper §2.2, Example 2.2).

    AMP(σ, φ, υ) follows the RIM insertion procedure of MAL(σ, φ) but
    restricts each insertion to the contiguous position range [J] that
    keeps the partial ranking consistent with [υ]; position [j ∈ J] is
    chosen with probability ∝ φ^(i-j). Every sample is consistent with
    [υ], and the proposal density of any consistent ranking is exactly
    computable, which is what the importance samplers need. *)

type t

val make : Mallows.t -> Prefs.Partial_order.t -> t
(** [make mal υ] conditions [mal] on [υ]. All items of [υ] must belong
    to the model's domain ([Invalid_argument] otherwise). The transitive
    closure of [υ] is taken internally. *)

val of_subranking : Mallows.t -> Prefs.Ranking.t -> t
(** Condition on a sub-ranking (chain) ψ. *)

val mallows : t -> Mallows.t
val condition : t -> Prefs.Partial_order.t
(** The (transitively closed) conditioning order. *)

val sample : t -> Util.Rng.t -> Prefs.Ranking.t
(** Draw a ranking consistent with the condition. *)

val log_density : t -> Prefs.Ranking.t -> float
(** Exact log-probability that {!sample} produces this ranking;
    [neg_infinity] when the ranking violates the condition. *)

val density : t -> Prefs.Ranking.t -> float
