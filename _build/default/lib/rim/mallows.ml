type t = {
  center : Prefs.Ranking.t;
  phi : float;
  mutable rim : Model.t option; (* memoized *)
}

let make ~center ~phi =
  if phi < 0. || phi > 1. then invalid_arg "Mallows.make: phi must be in [0,1]";
  { center; phi; rim = None }

let center t = t.center
let phi t = t.phi
let m t = Prefs.Ranking.length t.center

let insertion_row phi i =
  (* weights φ^(i-j) for j = 0..i *)
  let row = Array.init (i + 1) (fun j -> phi ** float_of_int (i - j)) in
  let sum = Array.fold_left ( +. ) 0. row in
  Array.map (fun w -> w /. sum) row

let to_rim t =
  match t.rim with
  | Some r -> r
  | None ->
      let n = m t in
      let pi =
        Array.init n (fun i ->
            if t.phi = 0. then
              (* point mass: always insert at the bottom (position i) *)
              Array.init (i + 1) (fun j -> if j = i then 1. else 0.)
            else insertion_row t.phi i)
      in
      let r = Model.make ~sigma:t.center ~pi in
      t.rim <- Some r;
      r

let log_z t =
  let n = m t in
  let acc = ref 0. in
  for i = 2 to n do
    acc := !acc +. Util.Logspace.geometric_series_log t.phi i
  done;
  !acc

let log_prob t r =
  let d = Prefs.Ranking.kendall_tau t.center r in
  if t.phi = 0. then (if d = 0 then 0. else Util.Logspace.neg_inf)
  else (float_of_int d *. log t.phi) -. log_z t

let prob t r = exp (log_prob t r)
let sample t rng = Model.sample (to_rim t) rng

let expected_distance ~m ~phi =
  (* Sum over insertion steps of E[i - j] with weights φ^(i-j). *)
  let acc = ref 0. in
  for i = 1 to m - 1 do
    let wsum = ref 0. and ksum = ref 0. in
    for k = 0 to i do
      let w = phi ** float_of_int k in
      wsum := !wsum +. w;
      ksum := !ksum +. (float_of_int k *. w)
    done;
    acc := !acc +. (!ksum /. !wsum)
  done;
  !acc

let recenter t center =
  if Prefs.Ranking.length center <> m t then invalid_arg "Mallows.recenter: wrong length";
  { center; phi = t.phi; rim = None }

let equal_params t1 t2 = Prefs.Ranking.equal t1.center t2.center && t1.phi = t2.phi

let pp ppf t =
  Format.fprintf ppf "MAL(%a, %.3g)" Prefs.Ranking.pp t.center t.phi
