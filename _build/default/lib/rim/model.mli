(** The Repeated Insertion Model RIM(σ, Π) (paper §2.2, Algorithm 1).

    Insertion step [i] (0-based, [i = 0..m-1]) inserts item [σ_i] into the
    current ranking of length [i] at position [j ∈ 0..i] with probability
    [Π(i, j)]. *)

type t

val make : sigma:Prefs.Ranking.t -> pi:float array array -> t
(** [make ~sigma ~pi] requires [pi.(i)] to have length [i+1], entries
    nonnegative and summing to 1 (within 1e-9); raises
    [Invalid_argument] otherwise. *)

val sigma : t -> Prefs.Ranking.t
val m : t -> int
(** Number of items. *)

val pi : t -> int -> int -> float
(** [pi t i j] is [Π(i, j)]. *)

val insertion_positions : t -> Prefs.Ranking.t -> int array
(** [insertion_positions t r] recovers the unique insertion vector
    [j_0..j_{m-1}] that produces [r]: [j_i] is the number of items
    among [σ_0..σ_{i-1}] placed before [σ_i] in [r]. Requires [r] to be
    over exactly the items of [σ]. *)

val prob : t -> Prefs.Ranking.t -> float
(** Exact probability of a ranking: the product of its insertion
    probabilities. *)

val log_prob : t -> Prefs.Ranking.t -> float
val sample : t -> Util.Rng.t -> Prefs.Ranking.t
(** Algorithm 1. *)

val uniform : Prefs.Ranking.t -> t
(** RIM with all insertions uniform: the uniform distribution over
    rankings of [σ]'s items. *)

val pp : Format.formatter -> t -> unit
