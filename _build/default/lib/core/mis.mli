(** The Multiple Importance Sampling core (paper §5.4, Equations 5–7).

    Samples are drawn from each proposal in turn and re-weighted with the
    balance heuristic of Veach & Guibas:
    [w(x) = p(x) / ((1/d) Σ_t q_t(x))], where [p] is the target Mallows
    density and [q_t] the exact AMP proposal densities. All proposals
    condition on a sub-ranking of the event, so the indicator [f ≡ 1] on
    every sample. *)

val balance_estimate :
  target:Rim.Mallows.t ->
  proposals:Rim.Amp.t array ->
  n_per:int ->
  Util.Rng.t ->
  float * int
(** [(estimate, total_samples)] for Equation (6) with equal sample counts
    per proposal. Raises [Invalid_argument] on an empty proposal array. *)

val is_estimate :
  target:Rim.Mallows.t -> proposal:Rim.Amp.t -> n:int -> Util.Rng.t -> float * int
(** Plain importance sampling — the [d = 1] special case (IS-AMP). *)

val plain_is_weights_estimate :
  target:Rim.Mallows.t ->
  proposals:Rim.Amp.t array ->
  n_per:int ->
  Util.Rng.t ->
  float * int
(** Ablation: multiple proposals but each sample weighted only by its own
    proposal density [p(x)/q_t(x)] and the per-proposal estimates
    averaged. Unbiased only when every proposal alone covers the event;
    included to demonstrate why the balance heuristic is needed
    (Example 5.1 vs 5.2). *)
