type exact = [ `Auto | `Two_label | `Bipartite | `Bipartite_basic | `General | `Brute ]

let exact_name : exact -> string = function
  | `Auto -> "auto"
  | `Two_label -> "two-label"
  | `Bipartite -> "bipartite"
  | `Bipartite_basic -> "bipartite-basic"
  | `General -> "general"
  | `Brute -> "brute"

let exact_prob ?budget which model lab gu =
  match which with
  | `Two_label -> Two_label.prob ?budget model lab gu
  | `Bipartite -> Bipartite.prob ?budget model lab gu
  | `Bipartite_basic -> Bipartite.prob_basic ?budget model lab gu
  | `General -> General.prob ?budget model lab gu
  | `Brute -> Brute.prob model lab gu
  | `Auto -> (
      match Prefs.Pattern_union.kind gu with
      | Prefs.Pattern_union.Two_label -> Two_label.prob ?budget model lab gu
      | Prefs.Pattern_union.Bipartite -> Bipartite.prob ?budget model lab gu
      | Prefs.Pattern_union.General -> General.prob ?budget model lab gu)

type approx =
  | Rejection of { n : int }
  | Mis_lite of { d : int; n_per : int; compensate : bool }
  | Mis_adaptive of { n_per : int; delta_d : int; d_max : int; tol : float }
  | Mis_full of { n_per : int }

let approx_name = function
  | Rejection _ -> "rejection"
  | Mis_lite _ -> "mis-amp-lite"
  | Mis_adaptive _ -> "mis-amp-adaptive"
  | Mis_full _ -> "mis-amp"

let approx_prob which mal lab gu rng =
  match which with
  | Rejection { n } -> Rejection.estimate ~n (Rim.Mallows.to_rim mal) lab gu rng
  | Mis_lite { d; n_per; compensate } ->
      Mis_amp_lite.estimate ~compensate ~d ~n_per mal lab gu rng
  | Mis_adaptive { n_per; delta_d; d_max; tol } ->
      (Mis_amp_adaptive.estimate ~n_per ~delta_d ~d_max ~tol mal lab gu rng)
        .Mis_amp_adaptive.estimate
  | Mis_full { n_per } -> Mis_amp.estimate_union ~n_per mal lab gu rng

type t = Exact of exact | Approx of approx

let name = function Exact e -> exact_name e | Approx a -> approx_name a

let prob ?budget t mal lab gu rng =
  match t with
  | Exact e -> exact_prob ?budget e (Rim.Mallows.to_rim mal) lab gu
  | Approx a ->
      (* Raw estimates are unclamped (the accuracy experiments need them);
         as a query answer the value is a probability, so clip to [0, 1]. *)
      min 1. (max 0. (Estimate.value (approx_prob a mal lab gu rng)))

let default_exact = Exact `Auto

let default_approx =
  Approx (Mis_adaptive { n_per = 1000; delta_d = 5; d_max = 50; tol = 0.05 })
