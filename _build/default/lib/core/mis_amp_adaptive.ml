type result = { estimate : Estimate.t; rounds : (int * float) list }

let estimate_with_plan ?(d0 = 1) ?(delta_d = 5) ?(d_max = 50) ?(n_per = 1000)
    ?(tol = 0.05) plan rng =
  if Mis_amp_lite.unsatisfiable plan then
    { estimate = Estimate.exact 0.; rounds = [] }
  else begin
    let rounds = ref [] in
    let totals = ref (Estimate.exact 0.) in
    let add (e : Estimate.t) =
      totals :=
        {
          e with
          Estimate.n_samples = !totals.Estimate.n_samples + e.Estimate.n_samples;
          overhead_time = !totals.Estimate.overhead_time +. e.Estimate.overhead_time;
          sampling_time = !totals.Estimate.sampling_time +. e.Estimate.sampling_time;
        }
    in
    let converged prev v =
      match prev with
      | None -> false
      | Some pv ->
          let scale = max (abs_float pv) (abs_float v) in
          scale = 0. || abs_float (v -. pv) <= tol *. scale
    in
    let rec go d prev last_d =
      let e = Mis_amp_lite.estimate_with_plan plan ~d ~n_per rng in
      add e;
      rounds := (d, e.Estimate.value) :: !rounds;
      let v = e.Estimate.value in
      (* Stop when stable, when d is capped, or when no new proposals
         appeared in this round (pool exhausted). *)
      if
        converged prev v || d >= d_max
        || e.Estimate.n_proposals <= last_d && d > d0
      then ()
      else go (d + delta_d) (Some v) e.Estimate.n_proposals
    in
    go d0 None 0;
    { estimate = !totals; rounds = List.rev !rounds }
  end

let estimate ?d0 ?delta_d ?d_max ?n_per ?tol ?modal_cap ?subrank_cap mal lab gu rng =
  let plan = Mis_amp_lite.prepare ?subrank_cap ?modal_cap mal lab gu in
  let r = estimate_with_plan ?d0 ?delta_d ?d_max ?n_per ?tol plan rng in
  (* Include full plan construction in the reported overhead. *)
  {
    r with
    estimate =
      { r.estimate with Estimate.overhead_time = Mis_amp_lite.plan_overhead plan };
  }
