(** IS-AMP (paper §5.3): importance sampling for a single sub-ranking ψ
    with one proposal, AMP(σ, φ, ψ). Efficient when the posterior is
    unimodal; Example 5.1 shows it under-estimates multi-modal
    posteriors, which is what {!Mis_amp} fixes. *)

val estimate :
  n:int ->
  Rim.Mallows.t ->
  Prefs.Ranking.t ->
  Util.Rng.t ->
  Estimate.t
(** [estimate ~n mal psi rng] estimates Pr(τ ⊨ ψ) for τ ~ mal. *)
