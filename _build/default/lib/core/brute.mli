(** Brute-force exact inference by enumerating all [m!] rankings.

    Only usable for small domains (m ≤ 10); serves as the correctness
    oracle for every other solver. *)

val prob : Rim.Model.t -> Prefs.Labeling.t -> Prefs.Pattern_union.t -> float
(** Marginal probability of the pattern union (Equation 2). *)

val prob_pattern : Rim.Model.t -> Prefs.Labeling.t -> Prefs.Pattern.t -> float

val prob_subrankings : Rim.Model.t -> Prefs.Ranking.t list -> float
(** Probability that a random ranking is consistent with at least one of
    the given sub-rankings. *)

val prob_partial_order : Rim.Model.t -> Prefs.Partial_order.t -> float
(** Probability that a random ranking extends the partial order. *)
