let sum_over model pred =
  let m = Rim.Model.m model in
  let total = ref 0. in
  Prefs.Ranking.all m (fun r ->
      if pred r then total := !total +. Rim.Model.prob model r);
  !total

(* Ranking.all enumerates permutations of 0..m-1; remap through sigma when the
   domain is not 0..m-1. *)
let remap model r =
  let sigma = Rim.Model.sigma model in
  let sorted = Array.of_list (List.sort compare (Prefs.Ranking.to_list sigma)) in
  if Array.length sorted > 0 && sorted.(Array.length sorted - 1) = Array.length sorted - 1
     && sorted.(0) = 0
  then r
  else
    Prefs.Ranking.of_array
      (Array.map (fun i -> sorted.(i)) (Prefs.Ranking.to_array r))

let prob model lab gu =
  sum_over model (fun r -> Prefs.Matcher.matches_union lab gu (remap model r))

let prob_pattern model lab g = prob model lab (Prefs.Pattern_union.singleton g)

let prob_subrankings model subs =
  sum_over model (fun r ->
      let r = remap model r in
      List.exists (fun sub -> Prefs.Matcher.matches_subranking r ~sub) subs)

let prob_partial_order model po =
  sum_over model (fun r -> Prefs.Partial_order.consistent po (remap model r))
