(** Greedy search for posterior modals (paper §5.4, Algorithms 5 and 6).

    A modal of the posterior of MAL(σ, φ) conditioned on a sub-ranking ψ
    is a completion of ψ with minimal Kendall-tau distance to σ. Finding
    the true minimum is intractable (Brandenburg et al.), so the paper
    inserts the missing items of σ greedily at distance-minimizing
    positions, branching on ties (Algorithm 5) or picking one completion
    to estimate the distance (Algorithm 6). *)

val insertion_costs : sub:Prefs.Ranking.t -> center:Prefs.Ranking.t -> int -> int array
(** [insertion_costs ~sub ~center x] is the array of added discordant
    pairs when inserting item [x] at each position [j = 0..|sub|] of
    [sub], relative to [center]. *)

val greedy_modals :
  ?cap:int ->
  sub:Prefs.Ranking.t ->
  center:Prefs.Ranking.t ->
  unit ->
  (Prefs.Ranking.t * int) list
(** Algorithm 5: complete [sub] to full rankings over [center]'s items,
    branching on all distance-minimizing insertion positions; returns
    (modal, Kendall distance to center) pairs in ascending distance
    order. [cap] (default 64) bounds the branching set, keeping the
    closest candidates. *)

val approximate_distance : sub:Prefs.Ranking.t -> center:Prefs.Ranking.t -> int
(** Algorithm 6: the Kendall distance of one greedy completion — the
    sub-ranking distance estimate used to sort sub-rankings in
    MIS-AMP-lite. *)

val approximate_completion :
  sub:Prefs.Ranking.t -> center:Prefs.Ranking.t -> Prefs.Ranking.t * int
(** The completion behind {!approximate_distance}. *)
