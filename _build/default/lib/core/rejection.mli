(** Rejection sampling (§5.1): draw rankings from the model and count how
    many match the pattern union. Simple, unbiased, and hopeless for rare
    events — the baseline of Figure 9. *)

val estimate :
  n:int ->
  Rim.Model.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  Util.Rng.t ->
  Estimate.t

val estimate_subrankings :
  n:int -> Rim.Model.t -> Prefs.Ranking.t list -> Util.Rng.t -> Estimate.t
(** Same, with the event "consistent with at least one sub-ranking". *)

val samples_until :
  exact:float ->
  rel_tol:float ->
  max_samples:int ->
  Rim.Model.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  Util.Rng.t ->
  [ `Converged of int | `Exhausted ]
(** Number of samples until the running estimate first falls within
    [rel_tol] relative error of the known [exact] value (and at least 10
    samples were drawn) — the paper's optimistic stopping rule for RS in
    Figure 9. *)
