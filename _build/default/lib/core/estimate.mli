(** Result record shared by the approximate solvers. *)

type t = {
  value : float;  (** estimated probability *)
  n_samples : int;  (** total samples drawn *)
  n_proposals : int;  (** proposal distributions used (1 for RS/IS) *)
  overhead_time : float;
      (** seconds spent constructing proposal distributions (decomposition,
          modal search) — the paper's Figure 13a *)
  sampling_time : float;  (** seconds spent drawing and weighing samples *)
}

val value : t -> float
val total_time : t -> float
val exact : float -> t
(** Wrap an exactly-known value (0 samples). *)

val pp : Format.formatter -> t -> unit
