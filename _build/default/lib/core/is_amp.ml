let estimate ~n mal psi rng =
  let t0 = Util.Timer.now () in
  let proposal = Rim.Amp.of_subranking mal psi in
  let t1 = Util.Timer.now () in
  let value, n_samples = Mis.is_estimate ~target:mal ~proposal ~n rng in
  {
    Estimate.value = min 1. value;
    n_samples;
    n_proposals = 1;
    overhead_time = t1 -. t0;
    sampling_time = Util.Timer.now () -. t1;
  }
