let estimate ?(modal_cap = 64) ~n_per mal psi rng =
  let t0 = Util.Timer.now () in
  let modals =
    Modals.greedy_modals ~cap:modal_cap ~sub:psi ~center:(Rim.Mallows.center mal) ()
  in
  let proposals =
    Array.of_list
      (List.map (fun (modal, _) -> Rim.Amp.of_subranking (Rim.Mallows.recenter mal modal) psi) modals)
  in
  let t1 = Util.Timer.now () in
  let value, n_samples = Mis.balance_estimate ~target:mal ~proposals ~n_per rng in
  {
    Estimate.value = min 1. value;
    n_samples;
    n_proposals = Array.length proposals;
    overhead_time = t1 -. t0;
    sampling_time = Util.Timer.now () -. t1;
  }

let estimate_union ?(modal_cap = 16) ?(proposal_cap = 256) ?subrank_cap ~n_per mal lab gu
    rng =
  let t0 = Util.Timer.now () in
  let center = Rim.Mallows.center mal in
  let subs = Prefs.Decompose.subrankings ?cap:subrank_cap lab gu in
  if subs = [] then Estimate.exact 0.
  else begin
    let per_sub =
      List.map
        (fun psi ->
          ( psi,
            Modals.greedy_modals ~cap:modal_cap ~sub:psi ~center () ))
        subs
    in
    (* Keep the best modal of every sub-ranking so the proposal mixture
       covers the whole event (unbiasedness), then fill up to the cap with
       the globally closest remaining modals. *)
    let heads, tails =
      List.fold_left
        (fun (hs, ts) (psi, modals) ->
          match modals with
          | [] -> (hs, ts)
          | (modal, dist) :: rest ->
              ( (psi, modal, dist) :: hs,
                List.map (fun (m, d) -> (psi, m, d)) rest @ ts ))
        ([], []) per_sub
    in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    let extra =
      take
        (max 0 (proposal_cap - List.length heads))
        (List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) tails)
    in
    let chosen = List.rev heads @ extra in
    let proposals =
      Array.of_list
        (List.map
           (fun (psi, modal, _) -> Rim.Amp.of_subranking (Rim.Mallows.recenter mal modal) psi)
           chosen)
    in
    let t1 = Util.Timer.now () in
    let value, n_samples = Mis.balance_estimate ~target:mal ~proposals ~n_per rng in
    {
      Estimate.value = min 1. value;
      n_samples;
      n_proposals = Array.length proposals;
      overhead_time = t1 -. t0;
      sampling_time = Util.Timer.now () -. t1;
    }
  end
