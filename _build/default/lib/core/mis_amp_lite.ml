type sub_entry = {
  psi : Prefs.Ranking.t;
  est_dist : int;
  mutable modals : (Prefs.Ranking.t * int) list option;
}

type plan = {
  mal : Rim.Mallows.t;
  subs : sub_entry array; (* ascending est_dist *)
  modal_cap : int;
  mutable expanded : int;
  mutable overhead : float;
}

let plan_of_subrankings ?(modal_cap = 16) mal subs =
  let t0 = Util.Timer.now () in
  let center = Rim.Mallows.center mal in
  let entries =
    List.map
      (fun psi ->
        { psi; est_dist = Modals.approximate_distance ~sub:psi ~center; modals = None })
      subs
  in
  let arr = Array.of_list entries in
  Array.sort (fun a b -> compare a.est_dist b.est_dist) arr;
  { mal; subs = arr; modal_cap; expanded = 0; overhead = Util.Timer.now () -. t0 }

let prepare ?subrank_cap ?modal_cap mal lab gu =
  let t0 = Util.Timer.now () in
  let subs = Prefs.Decompose.subrankings ?cap:subrank_cap lab gu in
  let plan = plan_of_subrankings ?modal_cap mal subs in
  plan.overhead <- plan.overhead +. (Util.Timer.now () -. t0 -. plan.overhead);
  plan

let prepare_subrankings ?modal_cap mal subs = plan_of_subrankings ?modal_cap mal subs
let plan_width plan = Array.length plan.subs
let plan_overhead plan = plan.overhead
let unsatisfiable plan = Array.length plan.subs = 0

let expand_sub plan k =
  let e = plan.subs.(k) in
  match e.modals with
  | Some _ -> ()
  | None ->
      e.modals <-
        Some
          (Modals.greedy_modals ~cap:plan.modal_cap ~sub:e.psi
             ~center:(Rim.Mallows.center plan.mal) ())

let pool_size plan =
  let total = ref 0 in
  for k = 0 to plan.expanded - 1 do
    match plan.subs.(k).modals with
    | Some ms -> total := !total + List.length ms
    | None -> ()
  done;
  !total

(* log Σ_i φ^d_i, treating φ = 0 as "count the d_i = 0 terms". *)
let log_mass phi dists =
  if dists = [] then Util.Logspace.neg_inf
  else if phi = 0. then begin
    let zeros = List.length (List.filter (fun d -> d = 0) dists) in
    if zeros = 0 then Util.Logspace.neg_inf else log (float_of_int zeros)
  end
  else if phi = 1. then log (float_of_int (List.length dists))
  else
    Util.Logspace.log_sum_exp
      (Array.of_list (List.map (fun d -> float_of_int d *. log phi) dists))

let ratio_of_masses phi ~all ~selected =
  let la = log_mass phi all and ls = log_mass phi selected in
  if ls = Util.Logspace.neg_inf then 1. else exp (la -. ls)

let estimate_with_plan ?(compensate = true) plan ~d ~n_per rng =
  if d <= 0 then invalid_arg "Mis_amp_lite: d <= 0";
  if unsatisfiable plan then Estimate.exact 0.
  else begin
    let t0 = Util.Timer.now () in
    let w = Array.length plan.subs in
    (* Grow the modal pool until d proposals are available and at least
       min(w, d) sub-rankings were considered. *)
    while
      plan.expanded < w && (pool_size plan < d || plan.expanded < min w d)
    do
      expand_sub plan plan.expanded;
      plan.expanded <- plan.expanded + 1
    done;
    let pool =
      List.concat
        (List.init plan.expanded (fun k ->
             match plan.subs.(k).modals with
             | Some ms -> List.map (fun (modal, dist) -> (k, modal, dist)) ms
             | None -> []))
    in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    (* Select the d modals closest to the center from the pooled modals of
       the selected sub-rankings (§5.5). *)
    let selected =
      take d (List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) pool)
    in
    let overhead = Util.Timer.now () -. t0 in
    plan.overhead <- plan.overhead +. overhead;
    match selected with
    | [] -> Estimate.exact 0.
    | _ ->
        let t1 = Util.Timer.now () in
        let proposals =
          Array.of_list
            (List.map
               (fun (k, modal, _) ->
                 Rim.Amp.of_subranking
                   (Rim.Mallows.recenter plan.mal modal)
                   plan.subs.(k).psi)
               selected)
        in
        let p, n_samples =
          Mis.balance_estimate ~target:plan.mal ~proposals ~n_per rng
        in
        let phi = Rim.Mallows.phi plan.mal in
        (* Estimates are probabilities: clip to [0, 1]. Compensation assumes
           near-disjoint sub-rankings and can overshoot badly on heavily
           overlapping unions; the clip bounds that failure mode (and is how
           the paper's Figure 12 errors stay within [0, 1]). *)
        let value =
          if not compensate then p
          else begin
            let sel_subs =
              List.sort_uniq compare (List.map (fun (k, _, _) -> k) selected)
            in
            let c_psi =
              ratio_of_masses phi
                ~all:(Array.to_list (Array.map (fun e -> e.est_dist) plan.subs))
                ~selected:(List.map (fun k -> plan.subs.(k).est_dist) sel_subs)
            in
            let c_r =
              ratio_of_masses phi
                ~all:(List.map (fun (_, _, dist) -> dist) pool)
                ~selected:(List.map (fun (_, _, dist) -> dist) selected)
            in
            p *. c_psi *. c_r
          end
        in
        {
          Estimate.value = min 1. (max 0. value);
          n_samples;
          n_proposals = List.length selected;
          overhead_time = overhead;
          sampling_time = Util.Timer.now () -. t1;
        }
  end

let estimate ?subrank_cap ?modal_cap ?compensate ~d ~n_per mal lab gu rng =
  let plan = prepare ?subrank_cap ?modal_cap mal lab gu in
  let e = estimate_with_plan ?compensate plan ~d ~n_per rng in
  { e with Estimate.overhead_time = plan.overhead }
