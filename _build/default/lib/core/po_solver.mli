(** Exact marginal probability that a RIM-distributed ranking extends a
    partial order over items.

    This is the "RIM matching" primitive (Kenig et al., AAAI'18) that the
    sub-ranking view of §5.2 reduces to: a dynamic program over RIM
    insertions whose state is the vector of absolute positions of the
    partial order's items inserted so far, pruning states that already
    violate an edge. Exponential in the number of constrained items
    (state space ≲ m^|items|), so it is practical for the small
    sub-rankings produced by pattern decomposition, at any [m]. *)

val prob : ?budget:Util.Timer.budget -> Rim.Model.t -> Prefs.Partial_order.t -> float
(** [prob model po] = Pr(τ consistent with [po]) for τ ~ model. Items of
    [po] must belong to the model's domain ([Invalid_argument]
    otherwise). The empty order has probability 1. *)

val prob_subranking : ?budget:Util.Timer.budget -> Rim.Model.t -> Prefs.Ranking.t -> float
(** Probability that τ is consistent with a sub-ranking (chain). *)

val max_states : int ref
(** Safety valve (default 2_000_000). *)
