lib/core/pattern_solver.mli: Prefs Rim Util
