lib/core/solver.ml: Bipartite Brute Estimate General Mis_amp Mis_amp_adaptive Mis_amp_lite Prefs Rejection Rim Two_label
