lib/core/mis_amp.mli: Estimate Prefs Rim Util
