lib/core/mis_amp_adaptive.mli: Estimate Mis_amp_lite Prefs Rim Util
