lib/core/modals.ml: Array Hashtbl List Prefs
