lib/core/bipartite.mli: Prefs Rim Util
