lib/core/brute.mli: Prefs Rim
