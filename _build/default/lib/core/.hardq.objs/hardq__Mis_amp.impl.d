lib/core/mis_amp.ml: Array Estimate List Mis Modals Prefs Rim Util
