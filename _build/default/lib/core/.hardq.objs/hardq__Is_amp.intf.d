lib/core/is_amp.mli: Estimate Prefs Rim Util
