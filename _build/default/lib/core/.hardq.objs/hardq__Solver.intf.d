lib/core/solver.mli: Estimate Prefs Rim Util
