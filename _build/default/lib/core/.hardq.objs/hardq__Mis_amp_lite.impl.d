lib/core/mis_amp_lite.ml: Array Estimate List Mis Modals Prefs Rim Util
