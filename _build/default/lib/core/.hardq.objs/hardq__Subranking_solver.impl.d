lib/core/subranking_solver.ml: List Po_solver Prefs Rim Util
