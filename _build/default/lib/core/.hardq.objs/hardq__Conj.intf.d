lib/core/conj.mli: Prefs
