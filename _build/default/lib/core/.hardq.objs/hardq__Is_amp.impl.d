lib/core/is_amp.ml: Estimate Mis Rim Util
