lib/core/two_label.ml: Array Conj Hashtbl List Prefs Rim Util
