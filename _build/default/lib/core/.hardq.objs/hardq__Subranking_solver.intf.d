lib/core/subranking_solver.mli: Prefs Rim Util
