lib/core/two_label.mli: Prefs Rim Util
