lib/core/rejection.ml: Estimate List Prefs Rim Util
