lib/core/mis_amp_adaptive.ml: Estimate List Mis_amp_lite
