lib/core/modals.mli: Prefs
