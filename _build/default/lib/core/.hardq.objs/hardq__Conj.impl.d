lib/core/conj.ml: Array Hashtbl List Prefs Stdlib
