lib/core/mis.ml: Array Rim Util
