lib/core/general.ml: List Pattern_solver Prefs Util
