lib/core/mis_amp_lite.mli: Estimate Prefs Rim Util
