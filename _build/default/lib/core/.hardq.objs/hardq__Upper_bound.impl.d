lib/core/upper_bound.ml: Bipartite List Option Prefs Rim Two_label
