lib/core/general.mli: Prefs Rim Util
