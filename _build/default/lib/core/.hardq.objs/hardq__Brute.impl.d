lib/core/brute.ml: Array List Prefs Rim
