lib/core/pattern_solver.ml: Array Bipartite Hashtbl List Prefs Rim Util
