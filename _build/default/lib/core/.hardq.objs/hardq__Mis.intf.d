lib/core/mis.mli: Rim Util
