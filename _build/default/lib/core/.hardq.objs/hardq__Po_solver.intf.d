lib/core/po_solver.mli: Prefs Rim Util
