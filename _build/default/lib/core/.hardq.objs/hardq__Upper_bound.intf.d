lib/core/upper_bound.mli: Prefs Rim Util
