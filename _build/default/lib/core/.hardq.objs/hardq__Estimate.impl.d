lib/core/estimate.ml: Format
