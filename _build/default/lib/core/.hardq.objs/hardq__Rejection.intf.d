lib/core/rejection.mli: Estimate Prefs Rim Util
