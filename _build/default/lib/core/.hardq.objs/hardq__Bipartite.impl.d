lib/core/bipartite.ml: Array Conj Hashtbl List Prefs Rim Util
