lib/core/estimate.mli: Format
