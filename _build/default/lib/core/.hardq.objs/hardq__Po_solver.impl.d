lib/core/po_solver.ml: Array Hashtbl List Prefs Rim Util
