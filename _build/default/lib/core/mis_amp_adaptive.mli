(** MIS-AMP-adaptive (paper §5.5): calls MIS-AMP-lite with a growing
    number of proposal distributions (increments of Δd) until the
    estimate stabilizes. *)

type result = {
  estimate : Estimate.t;  (** final estimate; times are cumulative *)
  rounds : (int * float) list;  (** (d, value) per round, in order *)
}

val estimate :
  ?d0:int ->
  ?delta_d:int ->
  ?d_max:int ->
  ?n_per:int ->
  ?tol:float ->
  ?modal_cap:int ->
  ?subrank_cap:int ->
  Rim.Mallows.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  Util.Rng.t ->
  result
(** Defaults: [d0 = 1], [delta_d = 5], [d_max = 50], [n_per = 1000],
    [tol = 0.05] (relative change between consecutive rounds). Stops
    early when the modal pool is exhausted. *)

val estimate_with_plan :
  ?d0:int ->
  ?delta_d:int ->
  ?d_max:int ->
  ?n_per:int ->
  ?tol:float ->
  Mis_amp_lite.plan ->
  Util.Rng.t ->
  result
