(** Upper bounds for pattern unions (paper §3.2 and §4.3.2), used by the
    Most-Probable-Session top-k optimization.

    Every edge [(l, r)] of the transitive closure of a pattern induces
    the necessary min/max constraint [α(l) < β(r)]; any subset of those
    constraints is a relaxation, so its probability upper-bounds the
    pattern's. Edges are ranked by the [ease] heuristic
    [ease(l, r | σ) = β(r | σ) - α(l | σ)] (positions in the reference
    ranking); the [k] hardest (smallest-ease) edges are kept. *)

val ease :
  Prefs.Labeling.t ->
  Prefs.Ranking.t ->
  Prefs.Pattern.node ->
  Prefs.Pattern.node ->
  int option
(** [ease lab sigma l r] in positions of [sigma]; [None] when either
    conjunction has no matching item (the edge is unsatisfiable). *)

val select_edges :
  k:int ->
  Prefs.Labeling.t ->
  Prefs.Ranking.t ->
  Prefs.Pattern.t ->
  (Prefs.Pattern.node * Prefs.Pattern.node) list option
(** The [k] smallest-ease transitive-closure edges of the pattern;
    [None] when the pattern is statically unsatisfiable (some node
    without a witness). A pattern with no edges yields [[]]. *)

val upper_bound :
  ?budget:Util.Timer.budget ->
  k:int ->
  Rim.Model.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  float
(** Exact probability of the relaxed union: with [k = 1] a two-label
    union solved by {!Two_label}; with [k >= 2] a union of constraint
    sets solved by {!Bipartite.prob_constraint_sets}. Guaranteed
    [>= Pr(G)]. *)
