(** MIS-AMP (paper §5.4): multiple importance sampling with AMP proposals
    centered at the greedy posterior modals of Algorithm 5.

    [estimate] handles a single sub-ranking; [estimate_union] is the
    "full" variant that builds proposals for *every* sub-ranking of the
    decomposed pattern union and all their (capped) modals — tractable
    only for small unions, which is why the paper introduces
    MIS-AMP-lite (see {!Mis_amp_lite}). *)

val estimate :
  ?modal_cap:int ->
  n_per:int ->
  Rim.Mallows.t ->
  Prefs.Ranking.t ->
  Util.Rng.t ->
  Estimate.t
(** Pr(τ ⊨ ψ): proposals AMP(modal_t, φ, ψ) for each greedy modal. *)

val estimate_union :
  ?modal_cap:int ->
  ?proposal_cap:int ->
  ?subrank_cap:int ->
  n_per:int ->
  Rim.Mallows.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  Util.Rng.t ->
  Estimate.t
(** Pr(τ ⊨ G) with proposals for all sub-rankings (each proposal
    conditions on its own ψ, so every sample satisfies G).
    [proposal_cap] (default 256) keeps the closest modals overall. *)
