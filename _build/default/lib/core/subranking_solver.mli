(** Exact inference through the sub-ranking view of §5.2:
    [Pr(G) = Pr(τ ⊨ ψ₁ ∪ … ∪ ψ_w)] by inclusion–exclusion over the
    sub-rankings, where the intersection of chain events is the event of
    a merged partial order (empty when the merge is cyclic) solved
    exactly by {!Po_solver}.

    Exponential in [w] (2^w terms), but independent of the number of
    items — the mirror image of the label-side exact solvers, and an
    independent cross-check for them and for the importance samplers at
    domain sizes far beyond brute-force enumeration. *)

exception Too_many of int
(** Raised when the union has more sub-rankings than [max_subrankings]. *)

val max_subrankings : int ref
(** Inclusion–exclusion term guard (default 16, i.e. ≤ 65535 terms). *)

val prob_subrankings :
  ?budget:Util.Timer.budget -> Rim.Model.t -> Prefs.Ranking.t list -> float
(** Probability that a random ranking is consistent with at least one of
    the given sub-rankings. The empty list has probability 0. *)

val prob :
  ?budget:Util.Timer.budget ->
  Rim.Model.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  float
(** Marginal probability of a pattern union, via
    {!Prefs.Decompose.subrankings}. *)
