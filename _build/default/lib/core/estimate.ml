type t = {
  value : float;
  n_samples : int;
  n_proposals : int;
  overhead_time : float;
  sampling_time : float;
}

let value t = t.value
let total_time t = t.overhead_time +. t.sampling_time

let exact v =
  { value = v; n_samples = 0; n_proposals = 0; overhead_time = 0.; sampling_time = 0. }

let pp ppf t =
  Format.fprintf ppf "%.6g (n=%d, d=%d, overhead=%.3gs, sampling=%.3gs)" t.value
    t.n_samples t.n_proposals t.overhead_time t.sampling_time
