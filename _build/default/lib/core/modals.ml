let insertion_costs ~sub ~center x =
  let k = Prefs.Ranking.length sub in
  let cpos y = Prefs.Ranking.position_of center y in
  let cx = cpos x in
  let costs = Array.make (k + 1) 0 in
  (* cost(0): every sub item that the center ranks before x is discordant. *)
  let c0 = ref 0 in
  for p = 0 to k - 1 do
    if cpos (Prefs.Ranking.item_at sub p) < cx then incr c0
  done;
  costs.(0) <- !c0;
  for j = 0 to k - 1 do
    let y = Prefs.Ranking.item_at sub j in
    costs.(j + 1) <- (costs.(j) + if cx < cpos y then 1 else -1)
  done;
  costs

let argmins costs =
  let best = Array.fold_left min costs.(0) costs in
  let out = ref [] in
  Array.iteri (fun j c -> if c = best then out := j :: !out) costs;
  (best, List.rev !out)

let greedy_modals ?(cap = 64) ~sub ~center () =
  let m = Prefs.Ranking.length center in
  let d0 = Prefs.Ranking.discordant_with_reference ~reference:center sub in
  let frontier = ref [ (sub, d0) ] in
  for i = 0 to m - 1 do
    let x = Prefs.Ranking.item_at center i in
    if not (Prefs.Ranking.mem sub x) then begin
      let expanded =
        List.concat_map
          (fun (s, d) ->
            let best, js = argmins (insertion_costs ~sub:s ~center x) in
            List.map (fun j -> (Prefs.Ranking.insert s j x, d + best)) js)
          !frontier
      in
      (* Dedup, keep the [cap] closest. *)
      let seen = Hashtbl.create 32 in
      let dedup =
        List.filter
          (fun (s, _) ->
            let key = Prefs.Ranking.to_array s in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          expanded
      in
      let sorted = List.stable_sort (fun (_, a) (_, b) -> compare a b) dedup in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      frontier := take cap sorted
    end
  done;
  List.stable_sort (fun (_, a) (_, b) -> compare a b) !frontier

let approximate_completion ~sub ~center =
  let m = Prefs.Ranking.length center in
  let d = ref (Prefs.Ranking.discordant_with_reference ~reference:center sub) in
  let s = ref sub in
  for i = 0 to m - 1 do
    let x = Prefs.Ranking.item_at center i in
    if not (Prefs.Ranking.mem !s x) then begin
      let best, js = argmins (insertion_costs ~sub:!s ~center x) in
      s := Prefs.Ranking.insert !s (List.hd js) x;
      d := !d + best
    end
  done;
  (!s, !d)

let approximate_distance ~sub ~center = snd (approximate_completion ~sub ~center)
