(** MIS-AMP-lite (paper §5.5): MIS-AMP restricted to [d] proposal
    distributions, with compensation for the pruned probability mass.

    The pattern union is decomposed into [w] sub-rankings, sorted by the
    greedy distance estimate of Algorithm 6. Modals are generated for the
    closest sub-rankings until [d] proposals are available; the [d]
    modals closest to the Mallows center become the proposals. The raw
    MIS estimate [p] is scaled by two compensation factors:

    - [c_ψ = Σ_{ψ∈S} φ^dist(ψ,σ) / Σ_{ψ∈S⁺} φ^dist(ψ,σ)] over all vs
      selected sub-rankings (estimated distances), and
    - [c_r = Σ_{r∈M} φ^dist(r,σ) / Σ_{r∈M⁺} φ^dist(r,σ)] over available
      vs selected modals (exact distances).

    Returned values are clipped to [0, 1]: compensation assumes the
    sub-ranking union is (near-)disjoint and can overshoot on heavily
    overlapping unions (see DESIGN.md, "Fidelity notes"). *)

type plan
(** The reusable construction state: decomposition, sorted sub-rankings
    and a lazily grown modal pool. Preparing a plan is the "overhead"
    phase of Figure 13a; estimates with increasing [d]
    (see {!Mis_amp_adaptive}) reuse it. *)

val prepare :
  ?subrank_cap:int ->
  ?modal_cap:int ->
  Rim.Mallows.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  plan
(** [modal_cap] (default 16) bounds modal branching per sub-ranking. *)

val prepare_subrankings :
  ?modal_cap:int -> Rim.Mallows.t -> Prefs.Ranking.t list -> plan
(** Plan over an explicit sub-ranking union (skips decomposition). *)

val plan_width : plan -> int
(** Number of sub-rankings [w]. *)

val plan_overhead : plan -> float
(** Seconds spent so far on decomposition + modal search. *)

val unsatisfiable : plan -> bool
(** True when the union has no sub-ranking (probability 0). *)

val estimate_with_plan :
  ?compensate:bool ->
  plan ->
  d:int ->
  n_per:int ->
  Util.Rng.t ->
  Estimate.t
(** Run the sampling phase with [d] proposals. [compensate] defaults to
    [true]; passing [false] reproduces the paper's Figure 11c/12
    ablation. The reported [overhead_time] is the *incremental* plan
    work triggered by this call. *)

val estimate :
  ?subrank_cap:int ->
  ?modal_cap:int ->
  ?compensate:bool ->
  d:int ->
  n_per:int ->
  Rim.Mallows.t ->
  Prefs.Labeling.t ->
  Prefs.Pattern_union.t ->
  Util.Rng.t ->
  Estimate.t
(** One-shot prepare + estimate; [overhead_time] covers the full
    construction. *)
