let max_states = ref 2_000_000

(* State: int array over the tracked items (fixed order), entry = absolute
   position + 1, or 0 when the item is not inserted yet. *)

let prob ?(budget = Util.Timer.no_limit) model po =
  let tracked = Array.of_list (Prefs.Partial_order.items po) in
  let t = Array.length tracked in
  if t = 0 then 1.
  else begin
    let sigma = Rim.Model.sigma model in
    let slot = Hashtbl.create t in
    Array.iteri (fun k item -> Hashtbl.replace slot item k) tracked;
    Array.iter
      (fun item ->
        if not (Prefs.Ranking.mem sigma item) then
          invalid_arg "Po_solver.prob: partial order mentions an unknown item")
      tracked;
    (* Edges as slot pairs; transitive closure not needed (pairwise checks
       on fully inserted endpoints suffice for final consistency, and
       partial states are pruned as soon as any edge with both endpoints
       inserted is violated). *)
    let edges =
      List.map
        (fun (a, b) -> (Hashtbl.find slot a, Hashtbl.find slot b))
        (Prefs.Partial_order.edges po)
    in
    let consistent st =
      List.for_all
        (fun (a, b) ->
          let pa = st.(a) and pb = st.(b) in
          pa = 0 || pb = 0 || pa < pb)
        edges
    in
    (* The DP can stop once every tracked item has been inserted: later
       insertions shift positions uniformly and cannot break an order. *)
    let last_step =
      Array.fold_left
        (fun acc item -> max acc (Prefs.Ranking.position_of sigma item))
        0
        (Array.map (fun item -> item) tracked)
    in
    let table = ref (Hashtbl.create 64) in
    Hashtbl.add !table (Array.make t 0) 1.;
    for i = 0 to last_step do
      Util.Timer.check budget;
      let item = Prefs.Ranking.item_at sigma i in
      let tracked_slot = Hashtbl.find_opt slot item in
      let next = Hashtbl.create (Hashtbl.length !table * 2) in
      let add st p =
        match Hashtbl.find_opt next st with
        | Some p0 -> Hashtbl.replace next st (p0 +. p)
        | None ->
            if Hashtbl.length next >= !max_states then
              failwith "Po_solver: state explosion";
            Hashtbl.add next st p
      in
      Hashtbl.iter
        (fun st q ->
          match tracked_slot with
          | Some k ->
              for j = 0 to i do
                let p = q *. Rim.Model.pi model i j in
                if p > 0. then begin
                  let st' =
                    Array.map (fun v -> if v > 0 && v - 1 >= j then v + 1 else v) st
                  in
                  st'.(k) <- j + 1;
                  if consistent st' then add st' p
                end
              done
          | None ->
              (* Group insertion positions by how many tracked positions
                 shift; the state outcome is identical within a group. *)
              let positions =
                List.sort compare
                  (List.filter (fun v -> v > 0) (Array.to_list st))
              in
              let boundaries = Array.of_list positions in
              let n_inserted = Array.length boundaries in
              for c = 0 to n_inserted do
                let jlo = if c = 0 then 0 else boundaries.(c - 1) in
                (* boundaries store pos+1, i.e. the first j strictly after
                   that item *)
                let jhi = if c = n_inserted then i else boundaries.(c) - 1 in
                if jlo <= jhi then begin
                  let psum = ref 0. in
                  for j = jlo to jhi do
                    psum := !psum +. Rim.Model.pi model i j
                  done;
                  if !psum > 0. then begin
                    let st' =
                      Array.map
                        (fun v -> if v > 0 && v - 1 >= jlo then v + 1 else v)
                        st
                    in
                    add st' (q *. !psum)
                  end
                end
              done)
        !table;
      table := next
    done;
    min 1. (Hashtbl.fold (fun _ q acc -> acc +. q) !table 0.)
  end

let prob_subranking ?budget model sub =
  prob ?budget model (Prefs.Partial_order.of_chain (Prefs.Ranking.to_list sub))
