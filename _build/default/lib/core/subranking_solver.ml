exception Too_many of int

let max_subrankings = ref 16

let prob_subrankings ?budget model subs =
  let w = List.length subs in
  if w = 0 then 0.
  else if w > !max_subrankings then raise (Too_many w)
  else begin
    let chains =
      List.map (fun s -> Prefs.Partial_order.of_chain (Prefs.Ranking.to_list s)) subs
    in
    let total = ref 0. in
    Util.Combinat.iter_nonempty_subsets chains (fun subset ->
        let sign = if List.length subset land 1 = 1 then 1. else -1. in
        (* Intersection of chain events = the merged partial order; a cyclic
           merge means the intersection is empty. *)
        let merged =
          List.fold_left
            (fun acc po ->
              match acc with
              | None -> None
              | Some acc -> Prefs.Partial_order.union acc po)
            (Some Prefs.Partial_order.empty)
            subset
        in
        match merged with
        | None -> ()
        | Some po -> total := !total +. (sign *. Po_solver.prob ?budget model po));
    max 0. (min 1. !total)
  end

let prob ?budget model lab gu =
  let sigma = Rim.Model.sigma model in
  (* Item ids in the labeling are positional (0..m-1); the decomposition
     produces sub-rankings over those ids, matching the model domain when
     sigma ranks 0..m-1. For general domains, remap through sigma order. *)
  ignore sigma;
  prob_subrankings ?budget model (Prefs.Decompose.subrankings lab gu)
