(** Deciding whether a concrete ranking matches a label pattern
    ((τ, λ) ⊨ g, paper §2.3).

    Matching uses the greedy "topmost embedding": processing nodes in
    topological order, each node takes the earliest position that carries
    its labels and lies strictly below all its parents' positions. Because
    embeddings need not be injective and the only inter-node constraints
    are parent-before-child, the greedy embedding exists iff any embedding
    exists. *)

val embedding : Labeling.t -> Pattern.t -> Ranking.t -> int array option
(** [embedding lab g r] is [Some delta] with [delta.(v)] the 0-based
    position assigned to node [v] by the greedy embedding, or [None] when
    [r] does not match [g]. *)

val matches : Labeling.t -> Pattern.t -> Ranking.t -> bool
(** [(r, lab) ⊨ g]. *)

val matches_union : Labeling.t -> Pattern_union.t -> Ranking.t -> bool
(** [(r, lab) ⊨ G] iff some pattern of [G] matches. *)

val matches_subranking : Ranking.t -> sub:Ranking.t -> bool
(** [matches_subranking r ~sub] iff the items of [sub] appear in [r] in
    the same relative order (τ ⊨ ψ, §5.2). *)
