exception Too_many of string

let default_cap = 1_000_000

let embeddings ?(cap = default_cap) lab g =
  let q = Pattern.n_nodes g in
  let candidates = Array.init q (fun v -> Labeling.items_with_all lab (Pattern.node g v)) in
  let count =
    Array.fold_left
      (fun acc c ->
        let n = List.length c in
        if acc > cap then acc else acc * max n 1)
      1 candidates
  in
  if count > cap then
    raise (Too_many (Printf.sprintf "Decompose.embeddings: > %d choices" cap));
  let out = ref [] in
  let choice = Array.make q 0 in
  let edge_ok () =
    List.for_all (fun (a, b) -> choice.(a) <> choice.(b)) (Pattern.edges g)
  in
  let acyclic () =
    let edges = List.map (fun (a, b) -> (choice.(a), choice.(b))) (Pattern.edges g) in
    match Partial_order.make ~edges with
    | _ -> true
    | exception Invalid_argument _ -> false
  in
  let rec go v =
    if v = q then begin
      if edge_ok () && acyclic () then out := Array.copy choice :: !out
    end
    else
      List.iter
        (fun item ->
          choice.(v) <- item;
          go (v + 1))
        candidates.(v)
  in
  go 0;
  List.rev !out

let partial_order_of_choice g choice =
  let edges = List.map (fun (a, b) -> (choice.(a), choice.(b))) (Pattern.edges g) in
  let items = Array.to_list choice in
  Partial_order.make_with_items ~items ~edges

let partial_orders ?cap lab g =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun choice ->
      let po = partial_order_of_choice g choice in
      let key = (Partial_order.items po, Partial_order.edges po) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some po
      end)
    (embeddings ?cap lab g)

let subrankings_into ?(cap = default_cap) ~seen ~out lab g =
  List.iter
    (fun po ->
      List.iter
        (fun r ->
          let key = Ranking.to_array r in
          if not (Hashtbl.mem seen key) then begin
            if Hashtbl.length seen >= cap then
              raise
                (Too_many
                   (Printf.sprintf "Decompose.subrankings: > %d sub-rankings" cap));
            Hashtbl.add seen key ();
            out := r :: !out
          end)
        (Partial_order.linear_extensions po))
    (partial_orders ~cap lab g)

let subrankings_of_pattern ?cap lab g =
  let seen = Hashtbl.create 64 and out = ref [] in
  subrankings_into ?cap ~seen ~out lab g;
  List.rev !out

let subrankings ?cap lab gu =
  let seen = Hashtbl.create 64 and out = ref [] in
  List.iter (fun g -> subrankings_into ?cap ~seen ~out lab g) (Pattern_union.patterns gu);
  List.rev !out
