(** Strict partial orders over items, represented as DAGs.

    A partial order [υ] is given by a set of items and directed edges
    [a -> b] meaning "[a] is preferred to [b]". The module rejects cyclic
    edge sets at construction time. *)

type item = int
type t

val make : edges:(item * item) list -> t
(** [make ~edges] builds the partial order whose item set is exactly the
    items mentioned in [edges], deduplicating edges and dropping
    self-loops is NOT done: a self-loop or cycle raises [Invalid_argument]. *)

val make_with_items : items:item list -> edges:(item * item) list -> t
(** Like {!make} but with possibly extra isolated items. *)

val empty : t
val items : t -> item list
(** Sorted, distinct. *)

val edges : t -> (item * item) list
(** Deduplicated, sorted. *)

val size : t -> int
(** Number of items. *)

val is_empty : t -> bool
val mem_item : t -> item -> bool

val succs : t -> item -> item list
(** Direct successors (items this one must precede). *)

val preds : t -> item -> item list

val transitive_closure : t -> t
(** Same items; edges closed under transitivity. *)

val union : t -> t -> t option
(** Merge of the two orders; [None] if the merged relation is cyclic. *)

val of_chain : item list -> t
(** [of_chain [a;b;c]] is the total order a > b > c (as a partial order).
    Raises [Invalid_argument] on duplicates. *)

val consistent : t -> Ranking.t -> bool
(** [consistent po r] iff every edge [a -> b] has [a] before [b] in [r].
    All items of [po] must occur in [r] (raises [Not_found] otherwise). *)

val linear_extensions : t -> Ranking.t list
(** All linear extensions over exactly [items t] (the sub-rankings
    [Δ(υ)] of the paper). Exponential; use {!count_linear_extensions}
    or a cap when the order may be wide. *)

val linear_extensions_capped : cap:int -> t -> Ranking.t list option
(** [None] if there are more than [cap] extensions. *)

val count_linear_extensions : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
