type item = int

type t = {
  items : item list; (* sorted, distinct *)
  edges : (item * item) list; (* sorted, distinct *)
}

let sort_uniq_items = List.sort_uniq Stdlib.compare
let sort_uniq_edges = List.sort_uniq Stdlib.compare

let succs t x = List.filter_map (fun (a, b) -> if a = x then Some b else None) t.edges
let preds t x = List.filter_map (fun (a, b) -> if b = x then Some a else None) t.edges

(* Kahn's algorithm; returns None when a cycle exists. *)
let topological_order t =
  let indeg = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace indeg x 0) t.items;
  List.iter (fun (_, b) -> Hashtbl.replace indeg b (Hashtbl.find indeg b + 1)) t.edges;
  let ready = List.filter (fun x -> Hashtbl.find indeg x = 0) t.items in
  let rec go acc ready =
    match ready with
    | [] -> if List.length acc = List.length t.items then Some (List.rev acc) else None
    | x :: rest ->
        let rest =
          List.fold_left
            (fun rest y ->
              let d = Hashtbl.find indeg y - 1 in
              Hashtbl.replace indeg y d;
              if d = 0 then y :: rest else rest)
            rest (succs t x)
        in
        go (x :: acc) rest
  in
  go [] ready

let build items edges =
  let t = { items = sort_uniq_items items; edges = sort_uniq_edges edges } in
  List.iter
    (fun (a, b) -> if a = b then invalid_arg "Partial_order: self-loop")
    t.edges;
  match topological_order t with
  | None -> invalid_arg "Partial_order: cyclic edge set"
  | Some _ -> t

let make ~edges =
  let items = List.concat_map (fun (a, b) -> [ a; b ]) edges in
  build items edges

let make_with_items ~items ~edges =
  let more = List.concat_map (fun (a, b) -> [ a; b ]) edges in
  build (items @ more) edges

let empty = { items = []; edges = [] }
let items t = t.items
let edges t = t.edges
let size t = List.length t.items
let is_empty t = t.items = []
let mem_item t x = List.mem x t.items

let transitive_closure t =
  (* BFS from each item over the successor relation. *)
  let closure_edges =
    List.concat_map
      (fun src ->
        let visited = Hashtbl.create 8 in
        let rec go frontier acc =
          match frontier with
          | [] -> acc
          | x :: rest ->
              let nexts =
                List.filter (fun y -> not (Hashtbl.mem visited y)) (succs t x)
              in
              List.iter (fun y -> Hashtbl.replace visited y ()) nexts;
              go (nexts @ rest) (List.map (fun y -> (src, y)) nexts @ acc)
        in
        go [ src ] [])
      t.items
  in
  { items = t.items; edges = sort_uniq_edges closure_edges }

let union t1 t2 =
  let items = t1.items @ t2.items and edges = t1.edges @ t2.edges in
  match build items edges with t -> Some t | exception Invalid_argument _ -> None

let of_chain l =
  let rec chain_edges = function
    | a :: (b :: _ as rest) -> (a, b) :: chain_edges rest
    | [ _ ] | [] -> []
  in
  build l (chain_edges l)

let consistent t r =
  List.for_all (fun (a, b) -> Ranking.position_of r a < Ranking.position_of r b) t.edges

let fold_linear_extensions t f init =
  let n = List.length t.items in
  let indeg = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace indeg x 0) t.items;
  List.iter (fun (_, b) -> Hashtbl.replace indeg b (Hashtbl.find indeg b + 1)) t.edges;
  let acc = ref init in
  let chosen = Array.make n 0 in
  let rec go depth =
    if depth = n then acc := f !acc (Ranking.of_array (Array.sub chosen 0 n))
    else
      List.iter
        (fun x ->
          if Hashtbl.find indeg x = 0 then begin
            Hashtbl.replace indeg x (-1); (* mark used *)
            List.iter (fun y -> Hashtbl.replace indeg y (Hashtbl.find indeg y - 1)) (succs t x);
            chosen.(depth) <- x;
            go (depth + 1);
            List.iter (fun y -> Hashtbl.replace indeg y (Hashtbl.find indeg y + 1)) (succs t x);
            Hashtbl.replace indeg x 0
          end)
        t.items
  in
  go 0;
  !acc

let linear_extensions t = List.rev (fold_linear_extensions t (fun acc r -> r :: acc) [])

exception Cap_exceeded

let linear_extensions_capped ~cap t =
  match
    fold_linear_extensions t
      (fun (n, acc) r -> if n >= cap then raise Cap_exceeded else (n + 1, r :: acc))
      (0, [])
  with
  | _, acc -> Some (List.rev acc)
  | exception Cap_exceeded -> None

let count_linear_extensions t = fold_linear_extensions t (fun n _ -> n + 1) 0
let equal t1 t2 = t1 = t2
let compare = Stdlib.compare

let pp ppf t =
  Format.fprintf ppf "@[<h>{items=%a; %a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.items
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, b) -> Format.fprintf ppf "%d\u{227B}%d" a b))
    t.edges
