lib/prefs/matcher.mli: Labeling Pattern Pattern_union Ranking
