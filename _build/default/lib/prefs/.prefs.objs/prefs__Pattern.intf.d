lib/prefs/pattern.mli: Format
