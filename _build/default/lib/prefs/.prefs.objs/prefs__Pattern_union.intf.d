lib/prefs/pattern_union.mli: Format Pattern
