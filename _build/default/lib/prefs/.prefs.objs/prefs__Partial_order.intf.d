lib/prefs/partial_order.mli: Format Ranking
