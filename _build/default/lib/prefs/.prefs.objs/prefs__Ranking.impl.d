lib/prefs/ranking.ml: Array Format Hashtbl List Stdlib Util
