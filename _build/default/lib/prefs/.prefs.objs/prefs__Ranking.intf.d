lib/prefs/ranking.mli: Format
