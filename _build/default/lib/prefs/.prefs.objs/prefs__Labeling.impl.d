lib/prefs/labeling.ml: Array Format Hashtbl List Option Stdlib
