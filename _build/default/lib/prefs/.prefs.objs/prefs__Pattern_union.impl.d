lib/prefs/pattern_union.ml: Format Hashtbl List Pattern Stdlib
