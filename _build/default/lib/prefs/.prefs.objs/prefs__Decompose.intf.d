lib/prefs/decompose.mli: Labeling Partial_order Pattern Pattern_union Ranking
