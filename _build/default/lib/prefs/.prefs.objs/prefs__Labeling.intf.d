lib/prefs/labeling.mli: Format
