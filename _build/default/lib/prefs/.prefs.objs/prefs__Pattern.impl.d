lib/prefs/pattern.ml: Array Format List Option Stdlib
