lib/prefs/partial_order.ml: Array Format Hashtbl List Ranking Stdlib
