lib/prefs/matcher.ml: Array Labeling List Option Pattern Pattern_union Ranking
