lib/prefs/decompose.ml: Array Hashtbl Labeling List Partial_order Pattern Pattern_union Printf Ranking
