type item = int
type label = int

type t = {
  labels : label list array; (* per item, sorted distinct *)
  index : (label, item list) Hashtbl.t; (* label -> items ascending *)
}

let build_index labels =
  let index = Hashtbl.create 64 in
  Array.iteri
    (fun i ls ->
      List.iter
        (fun l ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt index l) in
          Hashtbl.replace index l (i :: cur))
        ls)
    labels;
  Hashtbl.iter (fun l items -> Hashtbl.replace index l (List.rev items)) index;
  index

let make a =
  let labels = Array.map (List.sort_uniq Stdlib.compare) a in
  { labels; index = build_index labels }

let of_pairs ~n_items pairs =
  let a = Array.make n_items [] in
  List.iter
    (fun (i, l) ->
      if i < 0 || i >= n_items then invalid_arg "Labeling.of_pairs: item out of range";
      a.(i) <- l :: a.(i))
    pairs;
  make a

let n_items t = Array.length t.labels
let labels_of t i = t.labels.(i)
let has t i l = List.mem l t.labels.(i)
let has_all t i ls = List.for_all (fun l -> List.mem l t.labels.(i)) ls
let items_with t l = Option.value ~default:[] (Hashtbl.find_opt t.index l)

let items_with_all t = function
  | [] -> List.init (n_items t) (fun i -> i)
  | l :: rest -> List.filter (fun i -> has_all t i rest) (items_with t l)

let all_labels t =
  List.sort_uniq Stdlib.compare
    (Hashtbl.fold (fun l _ acc -> l :: acc) t.index [])

let restrict_items t m =
  if m > n_items t then invalid_arg "Labeling.restrict_items";
  make (Array.sub t.labels 0 m)

let pp ppf t =
  Array.iteri
    (fun i ls ->
      Format.fprintf ppf "%d:{%a}@ " i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        ls)
    t.labels
