(** Unions of label patterns [G = g1 ∪ … ∪ gz] (paper §3.3) and their
    classification into the solver families of §4. *)

type t

val make : Pattern.t list -> t
(** Deduplicates patterns; raises [Invalid_argument] on the empty list. *)

val patterns : t -> Pattern.t list
val size : t -> int
(** Number of patterns [z]. *)

val singleton : Pattern.t -> t

type kind =
  | Two_label  (** every pattern has exactly two nodes and one edge *)
  | Bipartite  (** every pattern is bipartite (includes two-label) *)
  | General    (** some pattern has a node that is both source and target *)

val kind : t -> kind
(** Most specific applicable family. *)

val all_labels : t -> int list
(** Distinct labels across all patterns. *)

val total_nodes : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
