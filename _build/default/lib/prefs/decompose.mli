(** Decomposition of label-pattern unions into item-level objects
    (paper §5.2, Figure 3):

    pattern union G  →  union of partial orders (one per embedding choice
    of items for nodes)  →  union of sub-rankings (linear extensions of
    each partial order over its own items).

    A ranking satisfies G iff it satisfies at least one sub-ranking. *)

exception Too_many of string
(** Raised when a decomposition exceeds its cap; the message says which
    stage overflowed. *)

val embeddings : ?cap:int -> Labeling.t -> Pattern.t -> int array list
(** All choices of one item per pattern node such that the item carries
    the node's labels and the induced item relation is acyclic (choices
    placing the same item on both endpoints of an edge are discarded).
    [cap] (default 1_000_000) bounds the number of raw choices. *)

val partial_orders : ?cap:int -> Labeling.t -> Pattern.t -> Partial_order.t list
(** The deduplicated item-level partial orders [∆(g, λ)]. *)

val subrankings : ?cap:int -> Labeling.t -> Pattern_union.t -> Ranking.t list
(** The deduplicated sub-ranking union equivalent to [G]; [cap]
    (default 1_000_000) bounds the total number of sub-rankings. *)

val subrankings_of_pattern : ?cap:int -> Labeling.t -> Pattern.t -> Ranking.t list
