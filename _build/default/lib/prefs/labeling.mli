(** Labeling functions: map items to finite sets of labels.

    A label is an abstract integer id; the PPD layer maps attribute/value
    pairs to label ids. The inference layer only sees this module. *)

type item = int
type label = int
type t

val make : label list array -> t
(** [make a] labels item [i] with [a.(i)]. The item domain is
    [0 .. Array.length a - 1]. *)

val of_pairs : n_items:int -> (item * label) list -> t
(** Build from (item, label) association pairs. *)

val n_items : t -> int
val labels_of : t -> item -> label list
(** Sorted, distinct. *)

val has : t -> item -> label -> bool
val has_all : t -> item -> label list -> bool

val items_with : t -> label -> item list
(** All items carrying the label, ascending. *)

val items_with_all : t -> label list -> item list
(** Items carrying every label in the (conjunction) list. *)

val all_labels : t -> label list
(** Every label that occurs, sorted. *)

val restrict_items : t -> int -> t
(** [restrict_items t m] keeps only items [0..m-1] (labels unchanged).
    Useful when truncating an item domain. *)

val pp : Format.formatter -> t -> unit
