let embedding lab g r =
  let m = Ranking.length r in
  let q = Pattern.n_nodes g in
  (* positions.(v) = ascending positions of items matching node v *)
  let positions =
    Array.init q (fun v ->
        let node = Pattern.node g v in
        let rec collect p acc =
          if p = m then List.rev acc
          else
            let acc =
              if Labeling.has_all lab (Ranking.item_at r p) node then p :: acc
              else acc
            in
            collect (p + 1) acc
        in
        collect 0 [])
  in
  let delta = Array.make q (-1) in
  let ok =
    List.for_all
      (fun v ->
        let bound =
          List.fold_left (fun b u -> max b delta.(u)) (-1) (Pattern.preds g v)
        in
        match List.find_opt (fun p -> p > bound) positions.(v) with
        | Some p ->
            delta.(v) <- p;
            true
        | None -> false)
      (Pattern.topological_order g)
  in
  if ok then Some delta else None

let matches lab g r = Option.is_some (embedding lab g r)

let matches_union lab gu r =
  List.exists (fun g -> matches lab g r) (Pattern_union.patterns gu)

let matches_subranking r ~sub =
  let k = Ranking.length sub in
  if k = 0 then true
  else
    let rec go p next =
      if next = k then true
      else if p = Ranking.length r then false
      else if Ranking.item_at r p = Ranking.item_at sub next then go (p + 1) (next + 1)
      else go (p + 1) next
    in
    go 0 0
