let neg_inf = neg_infinity

let log_add a b =
  if a = neg_inf then b
  else if b = neg_inf then a
  else if a >= b then a +. log1p (exp (b -. a))
  else b +. log1p (exp (a -. b))

let log_sum_exp a =
  let m = Array.fold_left max neg_inf a in
  if m = neg_inf then neg_inf
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0. a)

let log_mean_exp a =
  if Array.length a = 0 then invalid_arg "Logspace.log_mean_exp: empty";
  log_sum_exp a -. log (float_of_int (Array.length a))

let geometric_series_log phi k =
  if k < 1 then invalid_arg "Logspace.geometric_series_log: k < 1";
  if phi = 0. then 0.
  else if abs_float (phi -. 1.) < 1e-12 then log (float_of_int k)
  else if phi < 1. then log ((1. -. (phi ** float_of_int k)) /. (1. -. phi))
  else
    (* phi > 1: factor out the largest term for stability. *)
    (float_of_int (k - 1) *. log phi)
    +. log ((1. -. ((1. /. phi) ** float_of_int k)) /. (1. -. (1. /. phi)))
