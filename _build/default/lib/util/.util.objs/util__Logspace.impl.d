lib/util/logspace.ml: Array
