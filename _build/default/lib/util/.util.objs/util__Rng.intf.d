lib/util/rng.mli:
