lib/util/timer.mli:
