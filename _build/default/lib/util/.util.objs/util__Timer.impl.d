lib/util/timer.ml: Sys
