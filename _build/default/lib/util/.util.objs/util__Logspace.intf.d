lib/util/logspace.mli:
