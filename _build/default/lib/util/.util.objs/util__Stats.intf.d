lib/util/stats.mli: Format
