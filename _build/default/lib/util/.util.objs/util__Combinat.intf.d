lib/util/combinat.mli:
