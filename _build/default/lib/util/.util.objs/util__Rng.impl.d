lib/util/rng.ml: Array List Random
