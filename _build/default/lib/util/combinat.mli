(** Combinatorial helpers for brute-force oracles and decompositions. *)

val factorial : int -> int
(** [factorial n]; raises [Invalid_argument] for [n < 0] or [n > 20]
    (beyond 20 it overflows 63-bit integers). *)

val iter_permutations : int -> (int array -> unit) -> unit
(** [iter_permutations n f] calls [f] on each permutation of [0..n-1].
    The array passed to [f] is reused; copy it if you keep it. *)

val iter_subsets : 'a list -> ('a list -> unit) -> unit
(** Calls [f] on every subset (including the empty one), preserving order. *)

val iter_nonempty_subsets : 'a list -> ('a list -> unit) -> unit

val cartesian_product : 'a list list -> 'a list list
(** [cartesian_product [d1; d2; ...]] lists all tuples taking one element
    from each [di], in lexicographic order of the input lists. *)

val choose : int -> int -> int
(** Binomial coefficient, exact in int range. *)

val interleavings_count : int -> int -> int
(** [interleavings_count a b = choose (a+b) a]. *)
