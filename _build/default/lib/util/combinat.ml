let factorial n =
  if n < 0 || n > 20 then invalid_arg "Combinat.factorial: out of range";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

(* Heap's algorithm: generates each permutation by a single swap. *)
let iter_permutations n f =
  let a = Array.init n (fun i -> i) in
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i land 1 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let iter_subsets l f =
  let rec go acc = function
    | [] -> f (List.rev acc)
    | x :: rest ->
        go acc rest;
        go (x :: acc) rest
  in
  go [] l

let iter_nonempty_subsets l f =
  iter_subsets l (function [] -> () | s -> f s)

let cartesian_product doms =
  let rec go = function
    | [] -> [ [] ]
    | d :: rest ->
        let tails = go rest in
        List.concat_map (fun x -> List.map (fun t -> x :: t) tails) d
  in
  go doms

let choose n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1

let interleavings_count a b = choose (a + b) a
