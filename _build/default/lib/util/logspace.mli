(** Log-space arithmetic for tiny probabilities.

    The exact solvers work in ordinary floats, but importance-ratio
    computations over Mallows models with small dispersion can underflow;
    those paths form products in log space. *)

val neg_inf : float
(** Log of zero. *)

val log_sum_exp : float array -> float
(** [log_sum_exp a] is [log (sum_i (exp a.(i)))], computed stably.
    Returns {!neg_inf} on an all-[neg_inf] (or empty) input. *)

val log_add : float -> float -> float
(** Stable [log (exp a + exp b)]. *)

val log_mean_exp : float array -> float
(** [log_mean_exp a] is [log ((1/n) sum_i (exp a.(i)))]. *)

val geometric_series_log : float -> int -> float
(** [geometric_series_log phi k] is [log (1 + phi + ... + phi^(k-1))]
    for [phi >= 0] and [k >= 1]. *)
