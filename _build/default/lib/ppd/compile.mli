(** Query classification and rewriting (paper §3.1, Algorithm 2).

    [compile] turns a sessionwise CQ into, per session, a union of label
    patterns whose marginal probability over the session's model equals
    the probability that the query holds in that session:

    - attribute variables shared between different item variables'
      atoms form [V⁺(Q)]; they are grounded over their active domains and
      the query is rewritten into the union of the resulting itemwise
      CQs (Algorithm 2, DecomposeQuery);
    - equality comparisons substitute constants; other comparisons on a
      single item variable's attribute become derived predicate labels
      (e.g. "year >= 1990"), keeping the rewriting compact;
    - relational atoms whose first term is a *session* variable join the
      session key against an o-relation and bind their variables per
      session (so the pattern union may differ between sessions).

    Supported fragment: Boolean sessionwise CQs — every preference atom
    uses the same p-relation and syntactically identical session terms;
    comparisons are variable-vs-constant. [Unsupported] is raised
    otherwise. *)

exception Unsupported of string
exception Grounding_too_large of string

type request = {
  session : Database.session;
  union : Prefs.Pattern_union.t option;
      (** [None]: the query is statically unsatisfiable in this session. *)
}

type t = {
  p_rel : Database.p_relation;
  requests : request list;  (** sessions surviving the session filters *)
}

val v_plus : Database.t -> Query.t -> string list
(** The variables Algorithm 2 grounds, sorted. *)

val is_itemwise : Database.t -> Query.t -> bool
(** True when [v_plus] is empty: the query needs no decomposition (it is
    one label pattern per session). *)

val compile : ?grounding_cap:int -> Database.t -> Query.t -> t
(** [grounding_cap] (default 100_000) bounds the Cartesian product of
    [V⁺] domains per session; {!Grounding_too_large} beyond it. *)
