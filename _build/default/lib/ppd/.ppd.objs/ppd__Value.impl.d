lib/ppd/value.ml: Format Hashtbl Stdlib
