lib/ppd/eval.mli: Database Hardq Query Util
