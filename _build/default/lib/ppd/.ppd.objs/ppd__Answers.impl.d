lib/ppd/answers.ml: Database Eval List Printf Query Relation Util Value
