lib/ppd/database.ml: Array Hashtbl List Prefs Printf Relation Rim Value
