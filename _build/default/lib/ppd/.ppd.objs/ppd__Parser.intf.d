lib/ppd/parser.mli: Query
