lib/ppd/csv_io.ml: Array Buffer Database Hashtbl List Prefs Printf Relation Rim String Value
