lib/ppd/csv_io.mli: Database Relation
