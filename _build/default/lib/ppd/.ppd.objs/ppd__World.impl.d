lib/ppd/world.ml: Array Database Hashtbl List Prefs Printf Query Relation Rim Value
