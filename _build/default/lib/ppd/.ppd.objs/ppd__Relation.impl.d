lib/ppd/relation.ml: Array Format List Printf String Value
