lib/ppd/parser.ml: Buffer List Printf Query String Value
