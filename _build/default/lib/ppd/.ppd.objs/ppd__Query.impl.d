lib/ppd/query.ml: Format Hashtbl List Printf String Value
