lib/ppd/aggregate.mli: Database Hardq Query Util
