lib/ppd/query.mli: Format Value
