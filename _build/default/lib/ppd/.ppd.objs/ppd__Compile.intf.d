lib/ppd/compile.mli: Database Prefs Query
