lib/ppd/eval.ml: Compile Database Hardq Hashtbl List Prefs Rim Util
