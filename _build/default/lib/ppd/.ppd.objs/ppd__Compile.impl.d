lib/ppd/compile.ml: Array Database Hashtbl List Option Prefs Printf Query Relation Value
