lib/ppd/relation.mli: Format Value
