lib/ppd/world.mli: Database Prefs Query Util
