lib/ppd/value.mli: Format
