lib/ppd/database.mli: Prefs Relation Rim Value
