lib/ppd/answers.mli: Database Hardq Query Util Value
