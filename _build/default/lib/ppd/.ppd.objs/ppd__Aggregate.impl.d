lib/ppd/aggregate.ml: Array Database Eval List Relation Value
