(** Possible worlds of a RIM-PPD (paper §1: "every random possible world
    — a deterministic database — is obtained by sampling from the stored
    RIM models").

    A world fixes one ranking per session; a preference relation then
    materializes as the set of facts [(s; a; b)] with [a ≻_s b]. This
    module samples worlds and evaluates conjunctive queries *directly* on
    them (a naive backtracking join, no pattern machinery) — the
    semantics the whole engine must agree with, used as a Monte-Carlo
    oracle in the test suite. *)

type t
(** One ranking per session of every p-relation. *)

val sample : Database.t -> Util.Rng.t -> t
val ranking_of : t -> prel:string -> int -> Prefs.Ranking.t
(** Ranking of the [i]-th session of p-relation [prel]. *)

val holds : Database.t -> t -> Query.t -> bool
(** Does the Boolean CQ hold in this world? Evaluates the body by
    backtracking join over preference facts, o-relation tuples and
    comparisons. Follows the paper's sessionwise convention: wildcard
    session terms denote the *same* anonymous session across preference
    atoms sharing a session term list. Raises [Invalid_argument] on a
    query with head variables. *)

val estimate_prob :
  n:int -> Database.t -> Query.t -> Util.Rng.t -> float
(** Monte-Carlo probability of the query: fraction of [n] sampled worlds
    in which it holds. *)
