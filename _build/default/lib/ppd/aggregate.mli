(** Aggregation queries over sessions (the extension sketched in the
    paper's conclusions: "average age of voters who prefer a Republican
    to a Democrat").

    Under possible-world semantics, the expected sum of a per-session
    numeric attribute over the sessions satisfying [Q] is — by linearity —
    [Σ_s Pr(Q | s) · v_s], and the expected count is [Σ_s Pr(Q | s)]
    (Count-Session). The average is reported as the ratio of these two
    expectations, the standard first-order approximation of the expected
    average (the exact expectation of a ratio has no closed form). *)

type op = Sum | Avg | Count

type result = {
  value : float;
  expected_count : float;  (** Σ_s Pr(Q | s) *)
  n_sessions : int;  (** sessions considered *)
}

val over_sessions :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  value_of:(Database.session -> float option) ->
  op ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  result
(** [value_of] extracts the numeric attribute from a session ([None]
    sessions are skipped for [Sum]/[Avg]). *)

val session_key_value : index:int -> Database.session -> float option
(** Extractor for a numeric session-key attribute. *)

val joined_value :
  Database.t ->
  relation:string ->
  key_index:int ->
  attr:string ->
  Database.session ->
  float option
(** Extractor that joins the session's key attribute [key_index] against
    the first column of [relation] and reads [attr] from the first
    matching tuple (e.g. a voter's age from the Voters relation). *)
