(** Concrete syntax for conjunctive queries.

    Grammar (Datalog-flavoured, mirroring the paper's notation):

    {v
      query  ::= head ":-" atom ("," atom)* "."?
      head   ::= NAME "(" ")"
      atom   ::= NAME "(" args ")"              (* relational atom *)
               | NAME "(" args ";" term ";" term ")"   (* preference atom *)
               | term OP term                   (* comparison *)
      args   ::= term ("," term)*
      term   ::= "_" | lowercase-ident | Capitalized-ident | INT | STRING
      OP     ::= "=" | "!=" | "<" | "<=" | ">" | ">="
    v}

    Lowercase identifiers are variables; capitalized identifiers and
    quoted strings are string constants; integers are int constants.

    Example (the paper's Q2):
    [Q() :- P(_, _; c1; c2), C(c1, D, _, _, e, _), C(c2, R, _, _, e, _).] *)

exception Parse_error of string
(** Carries a human-readable message with position information. *)

val parse : string -> Query.t
(** Raises {!Parse_error}. *)

val parse_result : string -> (Query.t, string) result
