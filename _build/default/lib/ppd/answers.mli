(** Non-Boolean conjunctive queries: answer tuples with confidences.

    Following probabilistic-database semantics, a query with head
    variables [Q(x̄) :- body] returns, for every grounding [ā] of [x̄]
    over the active domain, the confidence [Pr(body[x̄ := ā] | D)] — the
    probability that the instantiated Boolean query holds in a random
    possible world. Head variables must occur in the body as item
    variables or item-relation attribute variables. *)

exception Unsupported of string

type answer = { values : Value.t list; confidence : float }

val domains : Database.t -> Query.t -> (string * Value.t list) list
(** Active domain of each head variable, in head order: the item-id
    column for item variables, the (intersected) attribute columns for
    attribute variables, filtered by the query's comparisons on that
    variable. *)

val evaluate :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  ?min_confidence:float ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  answer list
(** All answers with confidence above [min_confidence] (default 0:
    answers with confidence exactly 0 are dropped), sorted by descending
    confidence. A query with an empty head returns a single answer with
    no values (the Boolean probability). *)

val top :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  k:int ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  answer list
(** The [k] most probable answers. *)
