(** Query evaluation over a RIM-PPD (paper §3.1–§3.2).

    Sessions are independent, so for a Boolean CQ
    [Pr(Q | D) = 1 - Π_s (1 - Pr(Q | s))]; Count-Session is
    [Σ_s Pr(Q | s)]; Most-Probable-Session returns the top-k sessions,
    optionally pruned with the upper-bound optimization of §4.3.2.

    [group:true] evaluates each distinct (model, pattern-union) request
    once and replicates the result over the sessions sharing it — the
    §6.4 optimization behind Figure 15. *)

val per_session :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  (Database.session * float) list
(** Probability that the query holds in each surviving session, in
    session order. Defaults: [solver] = exact auto, [group] = true. *)

val boolean_prob :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  float
(** [Pr(Q | D)]. *)

val count_sessions :
  ?solver:Hardq.Solver.t ->
  ?group:bool ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  float
(** Expected number of sessions satisfying [Q] (Count-Session). *)

type topk_strategy =
  [ `Naive  (** evaluate every session exactly, then sort *)
  | `Edges of int  (** 1-edge / 2-edge upper bounds first (§3.2) *) ]

type topk_report = {
  results : (Database.session * float) list;  (** k best, descending *)
  n_exact : int;  (** exact solver invocations *)
  bound_time : float;  (** seconds computing upper bounds *)
  exact_time : float;  (** seconds in exact evaluations *)
}

val top_k :
  ?solver:Hardq.Solver.t ->
  ?strategy:topk_strategy ->
  k:int ->
  Database.t ->
  Query.t ->
  Util.Rng.t ->
  topk_report
(** Most-Probable-Session. With [`Edges e], upper bounds are computed for
    every session with the [e]-edge relaxation, sessions are evaluated
    exactly in descending bound order, and evaluation stops as soon as
    [k] exact probabilities dominate every remaining bound. *)
