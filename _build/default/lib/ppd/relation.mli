(** Ordinary relations (o-relations) of a RIM-PPD. *)

type t

val make : name:string -> attrs:string list -> Value.t list list -> t
(** [make ~name ~attrs tuples]; every tuple must have [List.length attrs]
    values ([Invalid_argument] otherwise). *)

val name : t -> string
val attrs : t -> string array
val arity : t -> int
val tuples : t -> Value.t array list
val cardinality : t -> int

val attr_index : t -> string -> int
(** Raises [Not_found] for an unknown attribute. *)

val column : t -> int -> Value.t list
(** Distinct values of a column, sorted. *)

val select : t -> (Value.t array -> bool) -> Value.t array list
val pp : Format.formatter -> t -> unit
