exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------------------------------------------ *)
(* CSV core                                                            *)
(* ------------------------------------------------------------------ *)

let parse_csv text =
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let n = String.length text in
  let flush_cell () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then ()
    else
      match text.[i] with
      | ',' ->
          flush_cell ();
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then fail "unterminated quoted cell"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  if Buffer.length buf > 0 || !row <> [] then flush_row ();
  List.filter (fun r -> r <> [ "" ]) (List.rev !rows)

let escape_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let unparse_csv rows =
  String.concat "\n" (List.map (fun r -> String.concat "," (List.map escape_cell r)) rows)
  ^ "\n"

let value_of_cell s =
  match int_of_string_opt s with Some i -> Value.Int i | None -> Value.Str s

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let relation_of_csv ~name text =
  match parse_csv text with
  | [] -> fail "relation %s: empty CSV" name
  | header :: rows ->
      let arity = List.length header in
      let tuples =
        List.mapi
          (fun i row ->
            if List.length row <> arity then
              fail "relation %s: row %d has %d cells, expected %d" name (i + 2)
                (List.length row) arity;
            List.map value_of_cell row)
          rows
      in
      Relation.make ~name ~attrs:header tuples

let csv_of_relation rel =
  unparse_csv
    (Array.to_list (Relation.attrs rel)
    :: List.map
         (fun tup -> List.map Value.to_string (Array.to_list tup))
         (Relation.tuples rel))

(* ------------------------------------------------------------------ *)
(* Preference relations                                                *)
(* ------------------------------------------------------------------ *)

let p_relation_of_csv ~name ~items text =
  let item_index = Hashtbl.create 16 in
  List.iteri (fun i tup -> Hashtbl.replace item_index tup.(0) i) (Relation.tuples items);
  let m = Relation.cardinality items in
  match parse_csv text with
  | [] -> fail "p-relation %s: empty CSV" name
  | header :: rows ->
      let key_attrs, rest =
        let rec split acc = function
          | "phi" :: [ "center" ] -> (List.rev acc, true)
          | x :: tl -> split (x :: acc) tl
          | [] -> (List.rev acc, false)
        in
        split [] header
      in
      if not rest then
        fail "p-relation %s: header must end with phi,center" name;
      let n_keys = List.length key_attrs in
      let sessions =
        List.mapi
          (fun i row ->
            if List.length row <> n_keys + 2 then
              fail "p-relation %s: row %d has wrong arity" name (i + 2);
            let key = Array.of_list (List.map value_of_cell (List.filteri (fun j _ -> j < n_keys) row)) in
            let phi_cell = List.nth row n_keys in
            let center_cell = List.nth row (n_keys + 1) in
            let phi =
              match float_of_string_opt phi_cell with
              | Some p when p >= 0. && p <= 1. -> p
              | _ -> fail "p-relation %s: row %d: bad phi %S" name (i + 2) phi_cell
            in
            let ids =
              List.filter (fun s -> s <> "") (String.split_on_char ';' center_cell)
            in
            let idxs =
              List.map
                (fun id ->
                  match Hashtbl.find_opt item_index (value_of_cell id) with
                  | Some k -> k
                  | None -> fail "p-relation %s: row %d: unknown item %S" name (i + 2) id)
                ids
            in
            if List.length idxs <> m then
              fail "p-relation %s: row %d: center covers %d of %d items" name (i + 2)
                (List.length idxs) m;
            let center =
              match Prefs.Ranking.of_list idxs with
              | r -> r
              | exception Invalid_argument _ ->
                  fail "p-relation %s: row %d: duplicate item in center" name (i + 2)
            in
            { Database.key; model = Rim.Mallows.make ~center ~phi })
          rows
      in
      Database.p_relation ~name ~key_attrs sessions

let csv_of_p_relation ~items prel =
  let id_of i = Value.to_string (List.nth (Relation.tuples items) i).(0) in
  let header =
    Array.to_list (Database.p_key_attrs prel) @ [ "phi"; "center" ]
  in
  let rows =
    List.map
      (fun (s : Database.session) ->
        Array.to_list (Array.map Value.to_string s.Database.key)
        @ [
            Printf.sprintf "%g" (Rim.Mallows.phi s.Database.model);
            String.concat ";"
              (List.map id_of
                 (Prefs.Ranking.to_list (Rim.Mallows.center s.Database.model)));
          ])
      (Array.to_list (Database.sessions prel))
  in
  unparse_csv (header :: rows)

let database_of_csv ~items ~items_name ?(relations = []) ?(preferences = []) () =
  let item_rel = relation_of_csv ~name:items_name items in
  let o_rels = List.map (fun (name, text) -> relation_of_csv ~name text) relations in
  let p_rels =
    List.map (fun (name, text) -> p_relation_of_csv ~name ~items:item_rel text) preferences
  in
  Database.make ~items:item_rel ~relations:o_rels ~preferences:p_rels ()
