type t = { rankings : (string * Prefs.Ranking.t array) list }

let sample db rng =
  {
    rankings =
      List.map
        (fun prel ->
          ( Database.p_name prel,
            Array.map
              (fun (s : Database.session) -> Rim.Mallows.sample s.Database.model rng)
              (Database.sessions prel) ))
        (Database.p_relations db);
  }

let ranking_of t ~prel i =
  match List.assoc_opt prel t.rankings with
  | Some arr -> arr.(i)
  | None -> invalid_arg ("World.ranking_of: unknown p-relation " ^ prel)

(* --- Backtracking join ------------------------------------------------ *)

(* [unify env term value] returns [Some undo] on success, where [undo]
   reverts any new binding. *)
let unify env term value =
  match term with
  | Query.Wildcard -> Some (fun () -> ())
  | Query.Const c -> if Value.equal c value then Some (fun () -> ()) else None
  | Query.Var v -> (
      match Hashtbl.find_opt env v with
      | Some bound -> if Value.equal bound value then Some (fun () -> ()) else None
      | None ->
          Hashtbl.replace env v value;
          Some (fun () -> Hashtbl.remove env v))

let rec unify_all env terms values =
  match (terms, values) with
  | [], [] -> Some (fun () -> ())
  | term :: ts, value :: vs -> (
      match unify env term value with
      | None -> None
      | Some undo -> (
          match unify_all env ts vs with
          | None ->
              undo ();
              None
          | Some undo_rest -> Some (fun () -> undo_rest (); undo ())))
  | _ -> invalid_arg "World: arity mismatch"

let holds db world q =
  if q.Query.head <> [] then invalid_arg "World.holds: query has head variables";
  (* Sessionwise convention (paper §3.1): wildcard session terms are the
     *same* anonymous session across preference atoms that share a session
     term list. Rewrite each such wildcard into a fresh shared variable. *)
  let q =
    let counter = ref 0 in
    let shared = Hashtbl.create 4 in
    let body =
      List.map
        (function
          | Query.Pref { rel; session; left; right } ->
              let key = (rel, session) in
              let session' =
                match Hashtbl.find_opt shared key with
                | Some s -> s
                | None ->
                    let s =
                      List.map
                        (function
                          | Query.Wildcard ->
                              incr counter;
                              Query.Var (Printf.sprintf "__session%d" !counter)
                          | t -> t)
                        session
                    in
                    Hashtbl.add shared key s;
                    s
              in
              Query.Pref { rel; session = session'; left; right }
          | a -> a)
        q.Query.body
    in
    { q with Query.body }
  in
  (* Comparisons last: they only test bound variables. *)
  let joins, cmps =
    List.partition (function Query.Cmp _ -> false | _ -> true) q.Query.body
  in
  let env = Hashtbl.create 8 in
  let eval_cmp = function
    | Query.Cmp { lhs; op; rhs } ->
        let value = function
          | Query.Const c -> Some c
          | Query.Var v -> Hashtbl.find_opt env v
          | Query.Wildcard -> None
        in
        (match (value lhs, value rhs) with
        | Some a, Some b -> Value.apply_op op a b
        | _ -> invalid_arg "World.holds: comparison on unbound variable")
    | Query.Pref _ | Query.Rel _ -> assert false
  in
  let rec go = function
    | [] -> List.for_all eval_cmp cmps
    | Query.Rel { rel; terms } :: rest ->
        let relation = Database.find_relation db rel in
        List.exists
          (fun tup ->
            match unify_all env terms (Array.to_list tup) with
            | None -> false
            | Some undo ->
                let ok = go rest in
                undo ();
                ok)
          (Relation.tuples relation)
    | Query.Pref { rel; session; left; right } :: rest ->
        let prel = Database.find_p_relation db rel in
        let sessions = Database.sessions prel in
        let arr = List.assoc rel world.rankings in
        let m = Database.m db in
        let try_session i =
          let s = sessions.(i) in
          match unify_all env session (Array.to_list s.Database.key) with
          | None -> false
          | Some undo_s ->
              let tau = arr.(i) in
              let found = ref false in
              let pa = ref 0 in
              while (not !found) && !pa < m do
                let pb = ref (!pa + 1) in
                while (not !found) && !pb < m do
                  (* item at position pa is preferred to item at pb *)
                  let a = Database.id_of_item db (Prefs.Ranking.item_at tau !pa) in
                  let b = Database.id_of_item db (Prefs.Ranking.item_at tau !pb) in
                  (match unify env left a with
                  | None -> ()
                  | Some undo_l ->
                      (match unify env right b with
                      | None -> ()
                      | Some undo_r ->
                          if go rest then found := true;
                          undo_r ());
                      undo_l ());
                  incr pb
                done;
                incr pa
              done;
              undo_s ();
              !found
        in
        let rec any i = i < Array.length sessions && (try_session i || any (i + 1)) in
        any 0
    | Query.Cmp _ :: _ -> assert false
  in
  go joins

let estimate_prob ~n db q rng =
  if n <= 0 then invalid_arg "World.estimate_prob: n <= 0";
  let hits = ref 0 in
  for _ = 1 to n do
    if holds db (sample db rng) q then incr hits
  done;
  float_of_int !hits /. float_of_int n
