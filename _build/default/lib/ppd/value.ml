type t = Int of int | Str of string

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0
let hash = Hashtbl.hash
let to_string = function Int i -> string_of_int i | Str s -> s
let pp ppf v = Format.pp_print_string ppf (to_string v)
let int i = Int i
let str s = Str s
let as_int = function Int i -> Some i | Str _ -> None

type op = Eq | Neq | Lt | Le | Gt | Ge

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let apply_op op a b =
  let c = compare a b in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
