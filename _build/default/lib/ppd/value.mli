(** Attribute values of the relational layer. *)

type t = Int of int | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val int : int -> t
val str : string -> t

val as_int : t -> int option

type op = Eq | Neq | Lt | Le | Gt | Ge

val op_to_string : op -> string

val apply_op : op -> t -> t -> bool
(** Comparison across types: ints compare numerically, strings
    lexicographically; an int and a string never satisfy [Eq] and order
    ints before strings for the inequality operators. *)
