type t = { name : string; attrs : string array; tuples : Value.t array list }

let make ~name ~attrs tuples =
  let attrs = Array.of_list attrs in
  let n = Array.length attrs in
  let tuples =
    List.map
      (fun tup ->
        if List.length tup <> n then
          invalid_arg
            (Printf.sprintf "Relation.make: tuple arity mismatch in %s" name);
        Array.of_list tup)
      tuples
  in
  { name; attrs; tuples }

let name t = t.name
let attrs t = Array.copy t.attrs
let arity t = Array.length t.attrs
let tuples t = t.tuples
let cardinality t = List.length t.tuples

let attr_index t a =
  let rec go i =
    if i = Array.length t.attrs then raise Not_found
    else if t.attrs.(i) = a then i
    else go (i + 1)
  in
  go 0

let column t i =
  List.sort_uniq Value.compare (List.map (fun tup -> tup.(i)) t.tuples)

let select t pred = List.filter pred t.tuples

let pp ppf t =
  Format.fprintf ppf "@[<v>%s(%s) [%d tuples]@]" t.name
    (String.concat ", " (Array.to_list t.attrs))
    (cardinality t)
