(** Plain-text import/export of RIM-PPD contents.

    CSV dialect: comma-separated, double-quote quoting with [""] escapes,
    first line is the header. Cells that parse as integers become
    [Value.Int], everything else [Value.Str].

    Preference relations use a CSV whose header is the session-key
    attribute names followed by the literal columns [phi] and [center];
    [center] is a semicolon-separated list of item ids (most preferred
    first) that must cover the whole item domain. *)

exception Malformed of string

val parse_csv : string -> string list list
(** Raw rows (including the header). Raises {!Malformed} on unbalanced
    quotes. Empty trailing lines are ignored. *)

val relation_of_csv : name:string -> string -> Relation.t
(** Header = attribute names; remaining rows = tuples. *)

val csv_of_relation : Relation.t -> string

val p_relation_of_csv : name:string -> items:Relation.t -> string -> Database.p_relation
(** Parses sessions against the given item relation (item ids in
    [center] are resolved through the first column of [items]).
    Raises {!Malformed} on unknown ids, bad [phi], or incomplete
    centers. *)

val csv_of_p_relation : items:Relation.t -> Database.p_relation -> string

val database_of_csv :
  items:string ->
  items_name:string ->
  ?relations:(string * string) list ->
  ?preferences:(string * string) list ->
  unit ->
  Database.t
(** Assemble a database from CSV strings: [items] (the item relation),
    named o-relations and named p-relations. *)
