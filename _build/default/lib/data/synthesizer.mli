(** Synthetic-profile generator standing in for DataSynthesizer [24]:
    given a seed population of tuples, produces [n] statistically similar
    tuples by bootstrap-resampling rows and assigning fresh keys. The
    CrowdRank experiment only needs the resampled population to preserve
    the joint distribution of (demographics, assigned model), which row
    resampling does exactly. *)

val resample :
  key_attr:int ->
  key_of:(int -> Ppd.Value.t) ->
  n:int ->
  Ppd.Value.t array list ->
  Util.Rng.t ->
  Ppd.Value.t array list
(** [resample ~key_attr ~key_of ~n seed_rows rng] draws [n] rows with
    replacement and overwrites column [key_attr] of the [i]-th output
    with [key_of i]. *)
