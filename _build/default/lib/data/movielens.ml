let all_genres =
  [
    "Comedy"; "Drama"; "Action"; "Thriller"; "Romance"; "SciFi"; "Horror";
    "Animation"; "Crime";
  ]

let genres_for n_movies =
  let k = min (List.length all_genres) (4 + (n_movies / 40)) in
  List.filteri (fun i _ -> i < k) all_genres

let v = Ppd.Value.str
let vi = Ppd.Value.int

let generate ?(n_movies = 200) ?(n_components = 16) ?(phi = 0.3) ~seed () =
  let rng = Util.Rng.make seed in
  let genres = genres_for n_movies in
  let movies =
    List.init n_movies (fun i ->
        (* Ensure every genre has both pre-1990 and post-1990 movies once the
           catalog is big enough. *)
        let genre = List.nth genres (i mod List.length genres) in
        let year =
          if i / List.length genres mod 2 = 0 then 1990 + Util.Rng.int rng 16
          else 1970 + Util.Rng.int rng 20
        in
        [ vi i; v (Printf.sprintf "movie%03d" i); vi year; v genre ])
  in
  let item_rel =
    Ppd.Relation.make ~name:"M" ~attrs:[ "id"; "title"; "year"; "genre" ] movies
  in
  let sessions =
    List.init n_components (fun c ->
        let center = Prefs.Ranking.of_array (Util.Rng.permutation rng n_movies) in
        {
          Ppd.Database.key = [| v (Printf.sprintf "component%02d" c) |];
          model = Rim.Mallows.make ~center ~phi;
        })
  in
  let prel = Ppd.Database.p_relation ~name:"P" ~key_attrs:[ "user" ] sessions in
  Ppd.Database.make ~items:item_rel ~preferences:[ prel ] ()

let query_fig14 =
  "Q() :- P(_; 0; 1), P(_; x; 1), P(_; x; y), M(x, _, year1, genre), year1 >= \
   1990, M(y, _, year2, genre), year2 < 1990."
