let v = Ppd.Value.str
let vi = Ppd.Value.int

let sexes = [ "F"; "M" ]
let ages = [ 20; 30; 40; 50; 60 ]
let genres = [ "Thriller"; "Comedy"; "Drama"; "Action" ]

let generate ?(n_movies = 20) ?(n_models = 7) ?(n_seed_workers = 100) ~n_workers
    ~seed () =
  let rng = Util.Rng.make seed in
  let pick l = Util.Rng.pick_list rng l in
  let movies =
    List.init n_movies (fun i ->
        [
          vi i;
          v (List.nth genres (i mod List.length genres));
          v (List.nth sexes (i mod 2));
          vi (List.nth ages (i mod List.length ages));
          v (if i mod 3 = 0 then "long" else "short");
        ])
  in
  let item_rel =
    Ppd.Relation.make ~name:"M"
      ~attrs:[ "id"; "genre"; "lead_sex"; "lead_age"; "length" ]
      movies
  in
  let models =
    Array.init n_models (fun _ ->
        let center = Prefs.Ranking.of_array (Util.Rng.permutation rng n_movies) in
        Rim.Mallows.make ~center ~phi:(0.2 +. Util.Rng.float rng 0.6))
  in
  (* Seed population: worker, sex, age, model index. *)
  let seed_rows =
    List.init n_seed_workers (fun i ->
        [| v (Printf.sprintf "seed%03d" i); v (pick sexes); vi (pick ages);
           vi (Util.Rng.int rng n_models) |])
  in
  let synthetic =
    Synthesizer.resample ~key_attr:0
      ~key_of:(fun i -> v (Printf.sprintf "worker%06d" i))
      ~n:n_workers seed_rows rng
  in
  let workers_rel =
    Ppd.Relation.make ~name:"V" ~attrs:[ "worker"; "sex"; "age" ]
      (List.map (fun row -> [ row.(0); row.(1); row.(2) ]) synthetic)
  in
  let sessions =
    List.map
      (fun row ->
        let idx = match Ppd.Value.as_int row.(3) with Some i -> i | None -> 0 in
        { Ppd.Database.key = [| row.(0) |]; model = models.(idx) })
      synthetic
  in
  let prel = Ppd.Database.p_relation ~name:"P" ~key_attrs:[ "worker" ] sessions in
  Ppd.Database.make ~items:item_rel ~relations:[ workers_rel ] ~preferences:[ prel ]
    ()

let query_fig15 =
  "Q() :- P(w; m1; m2), P(w; m2; m3), V(w, sex, age), M(m1, _, sex, _, \
   \"short\"), M(m2, _, _, age, \"short\"), M(m3, \"Thriller\", _, _, _)."
