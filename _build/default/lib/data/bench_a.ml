let sample_label rng ~m ~count ~top_heavy =
  let weight i =
    let x = if top_heavy then float_of_int (m - i) else float_of_int (i + 1) in
    x ** 1.5
  in
  Util.Rng.sample_without_replacement rng m ~weight count

let generate ?(m = 15) ?(phi = 0.1) ?(n_unions = 33) ?(items_per_label = 3) ~seed () =
  let rng = Util.Rng.make seed in
  List.init n_unions (fun u ->
      let r = Util.Rng.split rng in
      let center = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let mallows = Rim.Mallows.make ~center ~phi in
      (* Items are sampled by *position in sigma*; map back to item ids. *)
      let items_at positions =
        List.map (fun p -> Prefs.Ranking.item_at center p) positions
      in
      (* 8 labels: A1 C1 A2 C2 A3 C3 B D (ids 0..7). *)
      let label_items = Array.make 8 [] in
      for p = 0 to 2 do
        label_items.(2 * p) <-
          items_at (sample_label r ~m ~count:items_per_label ~top_heavy:false);
        label_items.((2 * p) + 1) <-
          items_at (sample_label r ~m ~count:items_per_label ~top_heavy:true)
      done;
      label_items.(6) <- items_at (sample_label r ~m ~count:items_per_label ~top_heavy:false);
      label_items.(7) <- items_at (sample_label r ~m ~count:items_per_label ~top_heavy:true);
      let per_item = Array.make m [] in
      Array.iteri
        (fun l items -> List.iter (fun i -> per_item.(i) <- l :: per_item.(i)) items)
        label_items;
      let labeling = Prefs.Labeling.make per_item in
      let pattern p =
        (* nodes: A_p, C_p, B, D; edges A>C, A>D, B>D *)
        Prefs.Pattern.make
          ~nodes:[ [ 2 * p ]; [ (2 * p) + 1 ]; [ 6 ]; [ 7 ] ]
          ~edges:[ (0, 1); (0, 3); (2, 3) ]
      in
      let union = Prefs.Pattern_union.make [ pattern 0; pattern 1; pattern 2 ] in
      {
        Instance.name = Printf.sprintf "bench-a/%d" u;
        mallows;
        labeling;
        union;
        params = [ ("m", m); ("z", 3); ("items_per_label", items_per_label) ];
      })

let truncate_union inst z =
  let ps = Prefs.Pattern_union.patterns inst.Instance.union in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  {
    inst with
    Instance.union = Prefs.Pattern_union.make (take z ps);
    params = ("z", z) :: List.remove_assoc "z" inst.Instance.params;
    name = inst.Instance.name ^ Printf.sprintf "/z%d" z;
  }
