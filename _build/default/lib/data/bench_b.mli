(** Benchmark-B (paper §6.1): pattern unions with varying number of
    patterns (1–3), labels per pattern (3–5) and items per label
    (3, 5, 7) over MAL(σ, 0.1) with m ∈ {20, 50, 100, 200}. Patterns in a
    union share the same random-partial-order edge structure but have
    their own labels/items. Scalability stress for the approximate
    solvers (Figure 13). *)

val generate :
  ?ms:int list ->
  ?phi:float ->
  ?patterns_per_union:int list ->
  ?labels_per_pattern:int list ->
  ?items_per_label:int list ->
  ?instances_per_combo:int ->
  seed:int ->
  unit ->
  Instance.t list
(** Defaults are the paper's grid (4·3·3·3·10 = 1080 instances); pass
    smaller lists to scale down. *)
