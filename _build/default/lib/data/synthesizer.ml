let resample ~key_attr ~key_of ~n seed_rows rng =
  match Array.of_list seed_rows with
  | [||] -> invalid_arg "Synthesizer.resample: empty seed population"
  | rows ->
      List.init n (fun i ->
          let row = Array.copy (Util.Rng.pick rng rows) in
          row.(key_attr) <- key_of i;
          row)
