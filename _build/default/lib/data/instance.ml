type t = {
  name : string;
  mallows : Rim.Mallows.t;
  labeling : Prefs.Labeling.t;
  union : Prefs.Pattern_union.t;
  params : (string * int) list;
}

let param t key = List.assoc key t.params
let model t = Rim.Mallows.to_rim t.mallows

let pp ppf t =
  Format.fprintf ppf "%s [%s]" t.name
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) t.params))
