let parties = [ "D"; "R" ]
let sexes = [ "F"; "M" ]
let regions = [ "NE"; "MW"; "S"; "W"; "SW"; "NW" ]
let edus = [ "HS"; "BA"; "BS"; "MS"; "JD"; "PhD" ]
let ages = [ 20; 30; 40; 50; 60; 70 ]
let dates = [ "5/5"; "6/5" ]

let v = Ppd.Value.str
let vi = Ppd.Value.int

let generate ?(n_candidates = 16) ?(n_voters = 1000) ?(phis = [ 0.2; 0.5; 0.8 ])
    ~seed () =
  let rng = Util.Rng.make seed in
  let pick l = Util.Rng.pick_list rng l in
  (* Candidates: ensure both parties and both sexes occur. *)
  let candidates =
    List.init n_candidates (fun i ->
        let party = if i < 2 then List.nth parties i else pick parties in
        let sex = if i < 4 then List.nth sexes (i mod 2) else pick sexes in
        [
          v (Printf.sprintf "cand%02d" i);
          v party;
          v sex;
          vi (pick ages);
          v (pick edus);
          v (pick regions);
        ])
  in
  let item_rel =
    Ppd.Relation.make ~name:"C"
      ~attrs:[ "candidate"; "party"; "sex"; "age"; "edu"; "reg" ]
      candidates
  in
  (* Voter demographic groups: sex x age x edu = 72; each owns 9 models. *)
  let group_models = Hashtbl.create 72 in
  let models_for sex age edu =
    let key = (sex, age, edu) in
    match Hashtbl.find_opt group_models key with
    | Some ms -> ms
    | None ->
        let ms =
          List.concat_map
            (fun phi ->
              List.init 3 (fun _ ->
                  let center =
                    Prefs.Ranking.of_array (Util.Rng.permutation rng n_candidates)
                  in
                  Rim.Mallows.make ~center ~phi))
            phis
        in
        Hashtbl.add group_models key ms;
        ms
  in
  let voters = ref [] and sessions = ref [] in
  for i = 0 to n_voters - 1 do
    let sex = pick sexes and age = pick ages and edu = pick edus in
    let name = Printf.sprintf "voter%04d" i in
    voters := [ v name; v sex; vi age; v edu ] :: !voters;
    let model = Util.Rng.pick_list rng (models_for sex age edu) in
    let date = pick dates in
    sessions := { Ppd.Database.key = [| v name; v date |]; model } :: !sessions
  done;
  let voters_rel =
    Ppd.Relation.make ~name:"V" ~attrs:[ "voter"; "sex"; "age"; "edu" ]
      (List.rev !voters)
  in
  let polls =
    Ppd.Database.p_relation ~name:"P" ~key_attrs:[ "voter"; "date" ]
      (List.rev !sessions)
  in
  Ppd.Database.make ~items:item_rel ~relations:[ voters_rel ] ~preferences:[ polls ]
    ()

let query_two_label =
  "Q() :- P(_, _; l; r), C(l, p, \"M\", _, _, _), C(r, p, \"F\", _, _, _)."

let query_top_k =
  "Q() :- P(_, date; c1; c2), P(_, date; c1; c3), P(_, date; c1; c4), C(c1, p, _, \
   _, _, \"NE\"), C(c2, p, _, _, _, \"MW\"), date = \"5/5\", C(c3, _, _, age, _, \
   \"NE\"), C(c4, _, \"M\", _, \"BA\", _), age = 50."
