(** Benchmark-D (paper §6.1): random two-label pattern unions over
    MAL(σ, 0.5) with m ∈ {20, 30, 40, 50, 60}, 2–5 patterns per union and
    3, 5 or 7 items per label. Two-label solver scalability (Figure 6). *)

val generate :
  ?ms:int list ->
  ?phi:float ->
  ?patterns_per_union:int list ->
  ?items_per_label:int list ->
  ?instances_per_combo:int ->
  seed:int ->
  unit ->
  Instance.t list
