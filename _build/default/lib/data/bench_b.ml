(* A random partial order over q nodes: include edge (a, b), a < b, with
   probability 1/2; guarantee at least one edge. *)
let random_edge_structure rng q =
  let edges = ref [] in
  for a = 0 to q - 2 do
    for b = a + 1 to q - 1 do
      if Util.Rng.bool rng then edges := (a, b) :: !edges
    done
  done;
  if !edges = [] then edges := [ (0, q - 1) ];
  !edges

let build_union rng ~m ~z ~q ~ipl ~edges =
  (* z patterns, each with q fresh labels of ipl distinct items. *)
  let n_labels = z * q in
  let per_item = Array.make m [] in
  let next_label = ref 0 in
  let patterns =
    List.init z (fun _ ->
        let nodes =
          List.init q (fun _ ->
              let l = !next_label in
              incr next_label;
              let items =
                Util.Rng.sample_without_replacement rng m ~weight:(fun _ -> 1.) ipl
              in
              List.iter (fun i -> per_item.(i) <- l :: per_item.(i)) items;
              [ l ])
        in
        Prefs.Pattern.make ~nodes ~edges)
  in
  ignore n_labels;
  (Prefs.Labeling.make per_item, Prefs.Pattern_union.make patterns)

let generate ?(ms = [ 20; 50; 100; 200 ]) ?(phi = 0.1)
    ?(patterns_per_union = [ 1; 2; 3 ]) ?(labels_per_pattern = [ 3; 4; 5 ])
    ?(items_per_label = [ 3; 5; 7 ]) ?(instances_per_combo = 10) ~seed () =
  let rng = Util.Rng.make seed in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun z ->
          List.concat_map
            (fun q ->
              List.concat_map
                (fun ipl ->
                  List.init instances_per_combo (fun k ->
                      let r = Util.Rng.split rng in
                      let center =
                        Prefs.Ranking.of_array (Util.Rng.permutation r m)
                      in
                      let edges = random_edge_structure r q in
                      let labeling, union = build_union r ~m ~z ~q ~ipl ~edges in
                      {
                        Instance.name =
                          Printf.sprintf "bench-b/m%d-z%d-q%d-i%d/%d" m z q ipl k;
                        mallows = Rim.Mallows.make ~center ~phi;
                        labeling;
                        union;
                        params =
                          [ ("m", m); ("z", z); ("q", q); ("items_per_label", ipl) ];
                      }))
                items_per_label)
            labels_per_pattern)
        patterns_per_union)
    ms
