(** Benchmark-A (paper §6.1): pattern unions over MAL(σ, 0.1) where each
    union is three bipartite patterns of the shape
    [{A ≻ C, A ≻ D, B ≻ D}]; the three patterns share the items of labels
    B and D. Items for A/B are sampled with probability ∝ (i+1)^1.5
    (bottom-heavy), items for C/D with probability ∝ (m-i)^1.5
    (top-heavy), making the unions low-probability — the accuracy stress
    test for the approximate solvers (Figures 5, 10a, 11). *)

val generate :
  ?m:int ->
  ?phi:float ->
  ?n_unions:int ->
  ?items_per_label:int ->
  seed:int ->
  unit ->
  Instance.t list
(** Defaults: [m = 15], [phi = 0.1], [n_unions = 33],
    [items_per_label = 3] (the paper's parameters). *)

val truncate_union : Instance.t -> int -> Instance.t
(** Instance with only the first [z] patterns of the union (used to build
    the Figure 5 conjunction-size sweep). *)
