(** The Polls synthetic database (paper §6.1, Figure 1): a polling
    database for an election.

    - [Candidates(candidate, party, sex, age, edu, reg)] — the item
      relation; party ∈ {D, R}, sex ∈ {F, M}, age ∈ {20..70}, six
      education levels, six regions.
    - [Voters(voter, sex, age, edu)] — voters fall into 72 demographic
      groups (2 × 6 × 6).
    - [Polls] — p-relation keyed by (voter, date): each group owns 9
      Mallows models (3 random centers × φ ∈ {0.2, 0.5, 0.8}); every
      voter gets a random model from her group and one of two poll
      dates. *)

val generate :
  ?n_candidates:int -> ?n_voters:int -> ?phis:float list -> seed:int -> unit -> Ppd.Database.t
(** Defaults: [n_candidates = 16], [n_voters = 1000],
    [phis = [0.2; 0.5; 0.8]]. *)

val query_two_label : string
(** The Figure 4 query: is a male candidate preferred to a female
    candidate of the same party?
    [Q() :- P(_, _; l; r), C(l, p, "M", _, _, _), C(r, p, "F", _, _, _).] *)

val query_top_k : string
(** The Figure 8 query (§6.2), with its self-joins, date selection and
    age/edu/region constants. *)

val parties : string list
val sexes : string list
val regions : string list
val edus : string list
val ages : int list
val dates : string list
