lib/data/movielens.mli: Ppd
