lib/data/bench_d.ml: Array Instance List Prefs Printf Rim Util
