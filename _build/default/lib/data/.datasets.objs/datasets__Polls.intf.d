lib/data/polls.mli: Ppd
