lib/data/bench_d.mli: Instance
