lib/data/crowdrank.ml: Array List Ppd Prefs Printf Rim Synthesizer Util
