lib/data/movielens.ml: List Ppd Prefs Printf Rim Util
