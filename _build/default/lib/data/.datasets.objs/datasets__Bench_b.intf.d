lib/data/bench_b.mli: Instance
