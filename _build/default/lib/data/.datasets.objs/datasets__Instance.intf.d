lib/data/instance.mli: Format Prefs Rim
