lib/data/polls.ml: Hashtbl List Ppd Prefs Printf Rim Util
