lib/data/bench_b.ml: Array Instance List Prefs Printf Rim Util
