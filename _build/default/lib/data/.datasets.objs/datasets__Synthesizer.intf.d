lib/data/synthesizer.mli: Ppd Util
