lib/data/bench_c.ml: Array Instance List Prefs Printf Rim Util
