lib/data/instance.ml: Format List Prefs Printf Rim String
