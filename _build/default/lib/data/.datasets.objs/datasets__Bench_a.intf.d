lib/data/bench_a.mli: Instance
