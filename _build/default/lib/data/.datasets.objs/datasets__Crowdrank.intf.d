lib/data/crowdrank.mli: Ppd
