lib/data/synthesizer.ml: Array List Util
