lib/data/bench_a.ml: Array Instance List Prefs Printf Rim Util
