lib/data/bench_c.mli: Instance
