let generate ?(ms = [ 20; 30; 40; 50; 60 ]) ?(phi = 0.5)
    ?(patterns_per_union = [ 2; 3; 4; 5 ]) ?(items_per_label = [ 3; 5; 7 ])
    ?(instances_per_combo = 10) ~seed () =
  let rng = Util.Rng.make seed in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun z ->
          List.concat_map
            (fun ipl ->
              List.init instances_per_combo (fun k ->
                  let r = Util.Rng.split rng in
                  let center = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
                  let per_item = Array.make m [] in
                  let next = ref 0 in
                  let patterns =
                    List.init z (fun _ ->
                        let fresh () =
                          let l = !next in
                          incr next;
                          let items =
                            Util.Rng.sample_without_replacement r m
                              ~weight:(fun _ -> 1.)
                              (min ipl m)
                          in
                          List.iter (fun i -> per_item.(i) <- l :: per_item.(i)) items;
                          [ l ]
                        in
                        let left = fresh () in
                        let right = fresh () in
                        Prefs.Pattern.two_label ~left ~right)
                  in
                  {
                    Instance.name = Printf.sprintf "bench-d/m%d-z%d-i%d/%d" m z ipl k;
                    mallows = Rim.Mallows.make ~center ~phi;
                    labeling = Prefs.Labeling.make per_item;
                    union = Prefs.Pattern_union.make patterns;
                    params = [ ("m", m); ("z", z); ("items_per_label", ipl) ];
                  }))
            items_per_label)
        patterns_per_union)
    ms
