(* Random bipartite edge structure over q nodes: the first ceil(q/2) nodes
   are sources, the rest targets; each source-target pair is an edge with
   probability 1/2 (at least one edge overall). *)
let random_bipartite_edges rng q =
  let n_left = (q + 1) / 2 in
  let edges = ref [] in
  for a = 0 to n_left - 1 do
    for b = n_left to q - 1 do
      if Util.Rng.bool rng then edges := (a, b) :: !edges
    done
  done;
  if !edges = [] then edges := [ (0, q - 1) ];
  !edges

let generate ?(ms = [ 10; 12; 14; 16 ]) ?(phi = 0.1)
    ?(patterns_per_union = [ 1; 2; 3 ]) ?(labels_per_pattern = [ 2; 3; 4 ])
    ?(items_per_label = [ 1; 3; 5 ]) ?(instances_per_combo = 10) ~seed () =
  let rng = Util.Rng.make seed in
  List.concat_map
    (fun m ->
      List.concat_map
        (fun z ->
          List.concat_map
            (fun q ->
              List.concat_map
                (fun ipl ->
                  List.init instances_per_combo (fun k ->
                      let r = Util.Rng.split rng in
                      let center =
                        Prefs.Ranking.of_array (Util.Rng.permutation r m)
                      in
                      let edges = random_bipartite_edges r q in
                      let per_item = Array.make m [] in
                      let next = ref 0 in
                      let patterns =
                        List.init z (fun _ ->
                            let nodes =
                              List.init q (fun _ ->
                                  let l = !next in
                                  incr next;
                                  let items =
                                    Util.Rng.sample_without_replacement r m
                                      ~weight:(fun _ -> 1.)
                                      (min ipl m)
                                  in
                                  List.iter
                                    (fun i -> per_item.(i) <- l :: per_item.(i))
                                    items;
                                  [ l ])
                            in
                            Prefs.Pattern.make ~nodes ~edges)
                      in
                      {
                        Instance.name =
                          Printf.sprintf "bench-c/m%d-z%d-q%d-i%d/%d" m z q ipl k;
                        mallows = Rim.Mallows.make ~center ~phi;
                        labeling = Prefs.Labeling.make per_item;
                        union = Prefs.Pattern_union.make patterns;
                        params =
                          [ ("m", m); ("z", z); ("q", q); ("items_per_label", ipl) ];
                      }))
                items_per_label)
            labels_per_pattern)
        patterns_per_union)
    ms
