(** MovieLens surrogate (paper §6.1 / §6.3).

    The paper uses the 200 most-rated MovieLens movies and a 16-component
    Mallows mixture learned from user ratings. The raw dataset and the
    external learning tool are not available offline, so this generator
    produces a synthetic movie catalog [M(id, title, year, genre)] and a
    16-component mixture with dispersed random centers; each mixture
    component becomes one session of the p-relation [P] (keyed by the
    component id). The genre count grows with the catalog size, which is
    what drives the pattern-union growth in Figure 14. *)

val genres_for : int -> string list
(** Genres used for a catalog of the given size (4 + m/40 of them). *)

val generate :
  ?n_movies:int -> ?n_components:int -> ?phi:float -> seed:int -> unit -> Ppd.Database.t
(** Defaults: [n_movies = 200], [n_components = 16], [phi = 0.3]. *)

val query_fig14 : string
(** The §6.3 query: Clerks (id 223... here id 0) preferred to Taxi Driver
    (id 1), and some post-1990 movie preferred both to a pre-1990 movie
    of the same genre and to Taxi Driver. *)
