(** Benchmark-C (paper §6.1): unions of bipartite patterns over
    MAL(σ, 0.1) with m ∈ {10, 12, 14, 16}; patterns per union 1–3,
    labels per pattern 2–4, items per label 1, 3 or 5. Patterns in a
    union share the same random bipartite edge structure. Exact bipartite
    solver scalability (Figure 7) and approximate-solver accuracy
    (Figures 10b, 12). *)

val generate :
  ?ms:int list ->
  ?phi:float ->
  ?patterns_per_union:int list ->
  ?labels_per_pattern:int list ->
  ?items_per_label:int list ->
  ?instances_per_combo:int ->
  seed:int ->
  unit ->
  Instance.t list
(** Defaults are the paper's grid (1080 instances). *)
