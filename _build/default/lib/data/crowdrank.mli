(** CrowdRank surrogate (paper §6.1 / §6.4).

    The real dataset is one Mechanical-Turk HIT: 20 movies ranked by 100
    workers, mined into 7 Mallows models, then blown up to 200,000
    synthetic worker profiles with DataSynthesizer. This generator builds
    the same shape: movies [M(id, genre, lead_sex, lead_age, length)],
    workers [V(worker, sex, age)] and the p-relation [P] keyed by worker,
    where each synthetic worker inherits the demographics and model of a
    bootstrap-resampled seed worker ({!Synthesizer}). The heavy
    duplication of (model, pattern) pairs across sessions is exactly what
    the §6.4 request-grouping optimization exploits (Figure 15). *)

val generate :
  ?n_movies:int ->
  ?n_models:int ->
  ?n_seed_workers:int ->
  n_workers:int ->
  seed:int ->
  unit ->
  Ppd.Database.t
(** Defaults: [n_movies = 20], [n_models = 7], [n_seed_workers = 100]. *)

val query_fig15 : string
(** The §6.4 query: a short movie with a lead actor of the worker's
    gender is preferred to a short movie with a lead actor of the
    worker's age bracket, which is preferred to some Thriller. *)
