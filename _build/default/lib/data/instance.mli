(** A self-contained inference instance: a labeled Mallows model plus a
    pattern union. The synthetic benchmarks (A–D) produce lists of these. *)

type t = {
  name : string;
  mallows : Rim.Mallows.t;
  labeling : Prefs.Labeling.t;
  union : Prefs.Pattern_union.t;
  params : (string * int) list;  (** generator parameters, for reporting *)
}

val param : t -> string -> int
(** Raises [Not_found]. *)

val model : t -> Rim.Model.t
(** The RIM form of the Mallows model. *)

val pp : Format.formatter -> t -> unit
