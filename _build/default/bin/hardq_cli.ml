(* hardq — command-line front end: evaluate hard CQs over the bundled
   synthetic RIM-PPDs, run Count-Session / Most-Probable-Session, and
   sample from Mallows models. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  let doc = "Random seed (controls both data generation and sampling)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let dataset_arg =
  let doc =
    "Dataset to generate: $(b,polls) (election polls, Figure 1), \
     $(b,movielens) (movie catalog surrogate) or $(b,crowdrank) (crowd-worker \
     surrogate)."
  in
  Arg.(
    value
    & opt (enum [ ("polls", `Polls); ("movielens", `Movielens); ("crowdrank", `Crowdrank) ]) `Polls
    & info [ "dataset" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "Scale of the generated dataset (candidates/movies and sessions)." in
  Arg.(value & opt int 12 & info [ "size" ] ~docv:"N" ~doc)

let sessions_arg =
  let doc = "Number of sessions (voters/workers) to generate." in
  Arg.(value & opt int 100 & info [ "sessions" ] ~docv:"N" ~doc)

let solver_arg =
  let doc =
    "Solver: $(b,auto), $(b,two-label), $(b,bipartite), $(b,general), \
     $(b,brute), $(b,rejection), $(b,mis-lite), $(b,mis-adaptive)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Hardq.Solver.Exact `Auto);
             ("two-label", Hardq.Solver.Exact `Two_label);
             ("bipartite", Hardq.Solver.Exact `Bipartite);
             ("general", Hardq.Solver.Exact `General);
             ("brute", Hardq.Solver.Exact `Brute);
             ("rejection", Hardq.Solver.Approx (Hardq.Solver.Rejection { n = 50_000 }));
             ( "mis-lite",
               Hardq.Solver.Approx
                 (Hardq.Solver.Mis_lite { d = 10; n_per = 1000; compensate = true }) );
             ("mis-adaptive", Hardq.Solver.default_approx);
           ])
        (Hardq.Solver.Exact `Auto)
    & info [ "solver" ] ~docv:"SOLVER" ~doc)

let query_arg =
  let doc =
    "The conjunctive query, e.g. 'Q() :- P(_, _; x; y), C(x, \"D\", _, _, e, \
     _), C(y, \"R\", _, _, e, _).'. Defaults to the dataset's showcase query."
  in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"CQ" ~doc)

let make_db dataset size sessions seed =
  match dataset with
  | `Polls ->
      ( Datasets.Polls.generate ~n_candidates:size ~n_voters:sessions ~seed (),
        Datasets.Polls.query_two_label )
  | `Movielens ->
      ( Datasets.Movielens.generate ~n_movies:(max size 20)
          ~n_components:(min sessions 16) ~seed (),
        Datasets.Movielens.query_fig14 )
  | `Crowdrank ->
      ( Datasets.Crowdrank.generate ~n_workers:sessions ~seed (),
        Datasets.Crowdrank.query_fig15 )

let with_query dataset size sessions seed query f =
  let db, default_q = make_db dataset size sessions seed in
  let qtext = Option.value ~default:default_q query in
  match Ppd.Parser.parse_result qtext with
  | Error msg ->
      Format.eprintf "parse error: %s@." msg;
      1
  | Ok q -> (
      match f db q with
      | () -> 0
      | exception Ppd.Compile.Unsupported msg ->
          Format.eprintf "unsupported query: %s@." msg;
          1)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let run dataset size sessions seed query solver verbose =
    with_query dataset size sessions seed query (fun db q ->
        let rng = Util.Rng.make seed in
        Format.printf "query: %a@." Ppd.Query.pp q;
        Format.printf "V+ = {%s}, itemwise: %b@."
          (String.concat ", " (Ppd.Compile.v_plus db q))
          (Ppd.Compile.is_itemwise db q);
        let probs = Ppd.Eval.per_session ~solver db q rng in
        if verbose then
          List.iter
            (fun ((s : Ppd.Database.session), p) ->
              Format.printf "  %-18s %.6f@."
                (String.concat "/"
                   (Array.to_list (Array.map Ppd.Value.to_string s.Ppd.Database.key)))
                p)
            probs;
        let bool_p =
          1. -. List.fold_left (fun acc (_, p) -> acc *. (1. -. p)) 1. probs
        in
        let count = List.fold_left (fun acc (_, p) -> acc +. p) 0. probs in
        Format.printf "Pr(Q | D)    = %.6f@." bool_p;
        Format.printf "E[count(Q)]  = %.4f over %d sessions@." count
          (List.length probs))
  in
  let verbose =
    Arg.(value & flag & info [ "per-session"; "v" ] ~doc:"Print per-session probabilities.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a Boolean CQ and its Count-Session aggregate")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* topk                                                                *)
(* ------------------------------------------------------------------ *)

let topk_cmd =
  let run dataset size sessions seed query solver k strategy =
    with_query dataset size sessions seed query (fun db q ->
        let rng = Util.Rng.make seed in
        let report = Ppd.Eval.top_k ~solver ~strategy ~k db q rng in
        Format.printf "top-%d sessions (%d exact evaluations, bounds %.3fs, exact %.3fs):@."
          k report.Ppd.Eval.n_exact report.Ppd.Eval.bound_time
          report.Ppd.Eval.exact_time;
        List.iter
          (fun ((s : Ppd.Database.session), p) ->
            Format.printf "  %-18s %.6f@."
              (String.concat "/"
                 (Array.to_list (Array.map Ppd.Value.to_string s.Ppd.Database.key)))
              p)
          report.Ppd.Eval.results)
  in
  let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"How many sessions.") in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("naive", `Naive); ("1-edge", `Edges 1); ("2-edge", `Edges 2) ]) (`Edges 1)
      & info [ "strategy" ] ~docv:"S" ~doc:"naive, 1-edge or 2-edge.")
  in
  Cmd.v
    (Cmd.info "topk" ~doc:"Most-Probable-Session query")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ k_arg $ strategy_arg)

(* ------------------------------------------------------------------ *)
(* answers                                                             *)
(* ------------------------------------------------------------------ *)

let answers_cmd =
  let run dataset size sessions seed query solver k =
    with_query dataset size sessions seed query (fun db q ->
        match Ppd.Answers.top ~solver ~k db q (Util.Rng.make seed) with
        | answers ->
            Format.printf "query: %a@." Ppd.Query.pp q;
            List.iter
              (fun (a : Ppd.Answers.answer) ->
                Format.printf "  (%s)  confidence %.6f@."
                  (String.concat ", "
                     (List.map Ppd.Value.to_string a.Ppd.Answers.values))
                  a.Ppd.Answers.confidence)
              answers
        | exception Ppd.Answers.Unsupported msg ->
            Format.eprintf "unsupported: %s@." msg)
  in
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Show the K most probable answers.")
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:"Evaluate a CQ with head variables: answer tuples with confidences")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let run m phi n seed =
    let rng = Util.Rng.make seed in
    let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity m) ~phi in
    for _ = 1 to n do
      Format.printf "%a@." Prefs.Ranking.pp (Rim.Mallows.sample mal rng)
    done;
    0
  in
  let m_arg = Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Number of items.") in
  let phi_arg =
    Arg.(value & opt float 0.5 & info [ "phi" ] ~docv:"PHI" ~doc:"Mallows dispersion.")
  in
  let n_arg = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of samples.") in
  Cmd.v
    (Cmd.info "sample" ~doc:"Sample rankings from a Mallows model")
    Term.(const run $ m_arg $ phi_arg $ n_arg $ seed_arg)

let () =
  let info =
    Cmd.info "hardq" ~version:"1.0.0"
      ~doc:"Hard queries over probabilistic preferences (RIM-PPD)"
  in
  exit (Cmd.eval' (Cmd.group info [ eval_cmd; topk_cmd; answers_cmd; sample_cmd ]))
