(* Session scalability on the CrowdRank surrogate (paper §6.4): thousands
   of crowd workers, few distinct (model, pattern) requests. Demonstrates
   that grouping identical requests makes evaluation cost proportional to
   the number of *distinct* requests, not the number of sessions.

   Run with:  dune exec examples/crowd_scale.exe *)

let () =
  let rng = Util.Rng.make 5 in
  let q = Ppd.Parser.parse Datasets.Crowdrank.query_fig15 in
  Format.printf "query: %a@.@." Ppd.Query.pp q;
  let solver =
    Hardq.Solver.Approx
      (Hardq.Solver.Mis_lite { d = 3; n_per = 200; compensate = true })
  in
  List.iter
    (fun (n_workers, run_naive) ->
      let db = Datasets.Crowdrank.generate ~n_workers ~seed:13 () in
      let grouped, t_grouped =
        Util.Timer.time (fun () ->
            Ppd.Eval.count_sessions ~solver ~group:true db q (Util.Rng.copy rng))
      in
      if run_naive then begin
        let naive, t_naive =
          Util.Timer.time (fun () ->
              Ppd.Eval.count_sessions ~solver ~group:false db q (Util.Rng.copy rng))
        in
        Format.printf
          "%7d sessions: count ~= %.1f (naive %.1f) | naive %.2fs, grouped %.2fs \
           (%.0fx)@."
          n_workers grouped naive t_naive t_grouped
          (if t_grouped > 0. then t_naive /. t_grouped else nan)
      end
      else
        Format.printf
          "%7d sessions: count ~= %.1f | grouped %.2fs (naive skipped: linear \
           in sessions)@."
          n_workers grouped t_grouped)
    [ (100, true); (1_000, true); (20_000, false) ]
