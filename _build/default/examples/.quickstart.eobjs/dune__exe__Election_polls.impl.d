examples/election_polls.ml: Array Datasets Format Hardq List Ppd String Util
