examples/crowd_scale.ml: Datasets Format Hardq List Ppd Util
