examples/quickstart.mli:
