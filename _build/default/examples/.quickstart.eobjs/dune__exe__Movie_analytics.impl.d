examples/movie_analytics.ml: Array Datasets Format Hardq List Ppd Prefs Rim String Util
