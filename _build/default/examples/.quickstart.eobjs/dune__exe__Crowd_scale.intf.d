examples/crowd_scale.mli:
