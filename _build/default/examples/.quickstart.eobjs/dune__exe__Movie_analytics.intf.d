examples/movie_analytics.mli:
