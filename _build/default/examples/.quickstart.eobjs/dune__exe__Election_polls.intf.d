examples/election_polls.mli:
