examples/portable_data.mli:
