examples/portable_data.ml: Array Format Fun List Ppd Prefs Rim String Util
