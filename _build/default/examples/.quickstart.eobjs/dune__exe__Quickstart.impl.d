examples/quickstart.ml: Format Hardq List Ppd Prefs Rim Util
