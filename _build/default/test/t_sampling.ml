(* Approximate solvers: rejection, IS-AMP, MIS-AMP(-lite/-adaptive),
   modals, compensation. *)

let tc = Alcotest.test_case

let small_mallows seed ~m ~phi =
  let r = Helpers.rng seed in
  Rim.Mallows.make ~center:(Prefs.Ranking.of_array (Util.Rng.permutation r m)) ~phi

let unit_rejection_estimates () =
  let r = Helpers.rng 3 in
  let mal = small_mallows 100 ~m:5 ~phi:0.6 in
  let model = Rim.Mallows.to_rim mal in
  let lab = Helpers.random_labeling (Helpers.rng 4) ~m:5 ~n_labels:3 in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
  in
  let exact = Hardq.Brute.prob model lab gu in
  let est = Hardq.Rejection.estimate ~n:40_000 model lab gu r in
  Helpers.check_rel ~tol:0.08 "rejection estimate"
    (max exact 1e-12)
    (max est.Hardq.Estimate.value 1e-12)

let unit_modal_costs () =
  (* center = <0,1,2,3>, sub = <3,0>: inserting 1 can go after 0 at cost 1
     (discord with 3... compute by hand): costs for positions 0..2. *)
  let center = Prefs.Ranking.identity 4 in
  let sub = Prefs.Ranking.of_list [ 3; 0 ] in
  let costs = Hardq.Modals.insertion_costs ~sub ~center 1 in
  (* j=0: 1 before 3 and 0: discord with none? center ranks 0 before 1, so
     pair (1 before 0) discord = 1; (1 before 3) concord; cost 1.
     j=1: after 3, before 0: (3 before 1) discord -> 1; (1 before 0) -> 1; cost 2.
     j=2: after both: (3 before 1) -> 1; cost 1. *)
  Alcotest.(check (array int)) "costs" [| 1; 2; 1 |] costs

let unit_greedy_modals_example_5_2 () =
  (* Example 5.2: psi = <sigma3, sigma1> over center <sigma1, sigma2, sigma3>;
     two modals: <sigma3, sigma1, sigma2> and <sigma2, sigma3, sigma1>. *)
  let center = Prefs.Ranking.of_list [ 0; 1; 2 ] in
  let sub = Prefs.Ranking.of_list [ 2; 0 ] in
  let modals = Hardq.Modals.greedy_modals ~sub ~center () in
  let rankings = List.map (fun (m, _) -> Prefs.Ranking.to_list m) modals in
  Alcotest.(check int) "two modals" 2 (List.length modals);
  Alcotest.(check bool) "modal <2,0,1>" true (List.mem [ 2; 0; 1 ] rankings);
  Alcotest.(check bool) "modal <1,2,0>" true (List.mem [ 1; 2; 0 ] rankings);
  List.iter (fun (_, d) -> Alcotest.(check int) "distance 2" 2 d) modals

let unit_modals_consistent_and_distance () =
  let r = Helpers.rng 31 in
  for _ = 1 to 40 do
    let m = 5 + Util.Rng.int r 3 in
    let center = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
    let items = Util.Rng.permutation r m in
    let sub = Prefs.Ranking.of_list [ items.(0); items.(1); items.(2) ] in
    let modals = Hardq.Modals.greedy_modals ~sub ~center () in
    List.iter
      (fun (modal, d) ->
        if not (Prefs.Matcher.matches_subranking modal ~sub) then
          Alcotest.fail "modal inconsistent with sub-ranking";
        Alcotest.(check int)
          "reported distance is the Kendall distance"
          (Prefs.Ranking.kendall_tau center modal) d)
      modals;
    (* approximate_distance equals the best greedy modal distance. *)
    let d6 = Hardq.Modals.approximate_distance ~sub ~center in
    let dbest = snd (List.hd modals) in
    if d6 < dbest then Alcotest.fail "Alg 6 beat Alg 5's best modal"
  done

let unit_is_amp_single_subranking () =
  (* IS-AMP is unbiased for a single sub-ranking: compare to brute force. *)
  let r = Helpers.rng 37 in
  for seed = 1 to 5 do
    let m = 5 in
    let mal = small_mallows (100 + seed) ~m ~phi:0.5 in
    let model = Rim.Mallows.to_rim mal in
    let items = Util.Rng.permutation r m in
    let sub = Prefs.Ranking.of_list [ items.(0); items.(1) ] in
    let exact = Hardq.Brute.prob_subrankings model [ sub ] in
    let est = Hardq.Is_amp.estimate ~n:20_000 mal sub r in
    Helpers.check_rel ~tol:0.1 "IS-AMP vs brute" exact est.Hardq.Estimate.value
  done

let unit_mis_amp_multimodal_example () =
  (* Example 5.1/5.2: phi small, psi = <sigma3, sigma1>. IS-AMP is unbiased
     (AMP's support covers every consistent ranking) but its proposal puts
     probability ~phi on the second posterior modal, so at small sample
     sizes it almost always misses that modal and reports roughly half the
     true probability. MIS-AMP's two modal-centered proposals are accurate
     at the same budget. *)
  let phi = 0.001 in
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.of_list [ 0; 1; 2 ]) ~phi in
  let model = Rim.Mallows.to_rim mal in
  let sub = Prefs.Ranking.of_list [ 2; 0 ] in
  let exact = Hardq.Brute.prob_subrankings model [ sub ] in
  let r = Helpers.rng 41 in
  let n = 100 in
  let mis = Hardq.Mis_amp.estimate ~n_per:n mal sub r in
  Helpers.check_rel ~tol:0.05 "MIS-AMP on multi-modal posterior" exact
    mis.Hardq.Estimate.value;
  Alcotest.(check int) "uses two proposals" 2 mis.Hardq.Estimate.n_proposals;
  (* Median of several small-n IS-AMP runs: with probability ~0.9 per run the
     second modal is never sampled, so the median sits near exact/2. *)
  let runs =
    List.init 11 (fun _ -> (Hardq.Is_amp.estimate ~n mal sub r).Hardq.Estimate.value)
  in
  let median = Util.Stats.median (Array.of_list runs) in
  if median > 0.75 *. exact then
    Alcotest.failf "expected small-n IS-AMP to typically underestimate: %g vs exact %g"
      median exact

let unit_mis_amp_union () =
  let r = Helpers.rng 43 in
  for seed = 1 to 4 do
    let m = 5 in
    let mal = small_mallows (200 + seed) ~m ~phi:0.3 in
    let model = Rim.Mallows.to_rim mal in
    let lab = Helpers.random_labeling (Helpers.rng (300 + seed)) ~m ~n_labels:3 in
    let gu =
      Helpers.random_union
        (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
        (Helpers.rng (400 + seed))
        ~z:2
    in
    let exact = Hardq.Brute.prob model lab gu in
    if exact > 1e-6 then begin
      let est = Hardq.Mis_amp.estimate_union ~n_per:4_000 mal lab gu r in
      Helpers.check_rel ~tol:0.15 "MIS-AMP union vs brute" exact
        est.Hardq.Estimate.value
    end
  done

let unit_mis_amp_lite_with_compensation () =
  let r = Helpers.rng 47 in
  for seed = 1 to 4 do
    let m = 5 in
    let mal = small_mallows (500 + seed) ~m ~phi:0.3 in
    let model = Rim.Mallows.to_rim mal in
    let lab = Helpers.random_labeling (Helpers.rng (600 + seed)) ~m ~n_labels:3 in
    let gu =
      Helpers.random_union
        (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
        (Helpers.rng (700 + seed))
        ~z:2
    in
    let exact = Hardq.Brute.prob model lab gu in
    if exact > 1e-6 then begin
      let est = Hardq.Mis_amp_lite.estimate ~d:20 ~n_per:4_000 mal lab gu r in
      Helpers.check_rel ~tol:0.35 "MIS-AMP-lite (d=20)" exact est.Hardq.Estimate.value
    end
  done

let unit_mis_amp_lite_unsatisfiable () =
  let mal = small_mallows 51 ~m:5 ~phi:0.5 in
  let lab = Prefs.Labeling.make (Array.make 5 [ 0 ]) in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 9 ])
  in
  let est = Hardq.Mis_amp_lite.estimate ~d:5 ~n_per:100 mal lab gu (Helpers.rng 1) in
  Helpers.check_close "unsatisfiable union" 0. est.Hardq.Estimate.value

let unit_adaptive_converges () =
  let r = Helpers.rng 53 in
  let m = 6 in
  let mal = small_mallows 900 ~m ~phi:0.4 in
  let model = Rim.Mallows.to_rim mal in
  let lab = Helpers.random_labeling (Helpers.rng 901) ~m ~n_labels:3 in
  let gu =
    Helpers.random_union
      (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
      (Helpers.rng 902) ~z:2
  in
  let exact = Hardq.Brute.prob model lab gu in
  let res = Hardq.Mis_amp_adaptive.estimate ~n_per:4_000 mal lab gu r in
  if exact > 1e-6 then
    Helpers.check_rel ~tol:0.3 "adaptive estimate" exact
      res.Hardq.Mis_amp_adaptive.estimate.Hardq.Estimate.value;
  Alcotest.(check bool) "at least one round" true
    (List.length res.Hardq.Mis_amp_adaptive.rounds >= 1)

let unit_compensation_improves_rare_truncated () =
  (* Compensation assumes the pruned sub-rankings are (near-)disjoint from
     the kept ones. Use a V-pattern with one item per label: its two
     sub-rankings <0,1,2> and <0,2,1> are mutually exclusive, so with d=1
     the raw estimate covers only ~half the mass and compensation must
     reduce the error (paper Figure 12). *)
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity 6) ~phi:0.3 in
  let model = Rim.Mallows.to_rim mal in
  let lab =
    Prefs.Labeling.make [| [ 0 ]; [ 1 ]; [ 2 ]; []; []; [] |]
  in
  let gu =
    Prefs.Pattern_union.singleton
      (Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ]; [ 2 ] ] ~edges:[ (0, 1); (0, 2) ])
  in
  let exact = Hardq.Brute.prob model lab gu in
  let r = Helpers.rng 59 in
  let on = Hardq.Mis_amp_lite.estimate ~compensate:true ~d:1 ~n_per:20_000 mal lab gu r in
  let off = Hardq.Mis_amp_lite.estimate ~compensate:false ~d:1 ~n_per:20_000 mal lab gu r in
  let err_on = Util.Stats.relative_error ~exact on.Hardq.Estimate.value in
  let err_off = Util.Stats.relative_error ~exact off.Hardq.Estimate.value in
  if err_on >= err_off then
    Alcotest.failf "compensation did not help: on=%.3g off=%.3g (exact %.3g)" err_on
      err_off exact

let unit_solver_dispatch () =
  let mal = small_mallows 61 ~m:5 ~phi:0.5 in
  let model = Rim.Mallows.to_rim mal in
  let lab = Helpers.random_labeling (Helpers.rng 62) ~m:5 ~n_labels:3 in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
  in
  let exact = Hardq.Brute.prob model lab gu in
  List.iter
    (fun which ->
      Helpers.check_close ~eps:1e-9
        ("dispatch " ^ Hardq.Solver.exact_name which)
        exact
        (Hardq.Solver.exact_prob which model lab gu))
    [ `Auto; `Two_label; `Bipartite; `Bipartite_basic; `General; `Brute ]

let suites =
  [
    ( "sampling",
      [
        tc "rejection sampling converges" `Slow unit_rejection_estimates;
        tc "modal insertion costs" `Quick unit_modal_costs;
        tc "greedy modals (example 5.2)" `Quick unit_greedy_modals_example_5_2;
        tc "modals consistent; distances correct" `Quick unit_modals_consistent_and_distance;
        tc "IS-AMP unbiased on single sub-ranking" `Slow unit_is_amp_single_subranking;
        tc "MIS-AMP fixes multi-modality (ex 5.1/5.2)" `Slow unit_mis_amp_multimodal_example;
        tc "MIS-AMP on unions" `Slow unit_mis_amp_union;
        tc "MIS-AMP-lite with compensation" `Slow unit_mis_amp_lite_with_compensation;
        tc "MIS-AMP-lite on unsatisfiable unions" `Quick unit_mis_amp_lite_unsatisfiable;
        tc "MIS-AMP-adaptive converges" `Slow unit_adaptive_converges;
        tc "compensation reduces error at d=1" `Slow unit_compensation_improves_rare_truncated;
        tc "solver dispatch consistency" `Quick unit_solver_dispatch;
      ] );
  ]
