(* RIM / Mallows / AMP / mixture / learning. *)

let tc = Alcotest.test_case

let unit_rim_validation () =
  let sigma = Prefs.Ranking.of_list [ 0; 1 ] in
  Alcotest.check_raises "bad row length"
    (Invalid_argument "Rim.Model.make: pi row length must be i+1") (fun () ->
      ignore (Rim.Model.make ~sigma ~pi:[| [| 1. |]; [| 1. |] |]));
  Alcotest.check_raises "row must sum to 1"
    (Invalid_argument "Rim.Model.make: pi row does not sum to 1") (fun () ->
      ignore (Rim.Model.make ~sigma ~pi:[| [| 1. |]; [| 0.3; 0.3 |] |]))

let unit_rim_example_2_1 () =
  (* Example 2.1: Pr(<b,c,a> | <a,b,c>, Pi) = Pi(1,1)*Pi(2,1)*Pi(3,2)
     (1-based) = pi.(0).(0) * pi.(1).(0) * pi.(2).(1) (0-based). *)
  let sigma = Prefs.Ranking.of_list [ 0; 1; 2 ] (* a b c *) in
  let pi = [| [| 1. |]; [| 0.7; 0.3 |]; [| 0.2; 0.5; 0.3 |] |] in
  let model = Rim.Model.make ~sigma ~pi in
  let tau = Prefs.Ranking.of_list [ 1; 2; 0 ] (* <b,c,a> *) in
  Helpers.check_close "example 2.1" (1. *. 0.7 *. 0.5) (Rim.Model.prob model tau)

let prop_rim_probs_sum_to_one =
  Helpers.qtest ~count:40 "RIM probabilities sum to 1 over all rankings"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 2 + Util.Rng.int r 4 in
      let mal = Helpers.random_mallows r m in
      let model = Rim.Mallows.to_rim mal in
      let total = ref 0. in
      Prefs.Ranking.all m (fun t -> total := !total +. Rim.Model.prob model t);
      abs_float (!total -. 1.) < 1e-9)

let prop_mallows_kendall_equals_rim =
  Helpers.qtest ~count:60 "Mallows closed form = RIM insertion probability"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 2 + Util.Rng.int r 4 in
      let mal = Helpers.random_mallows ~phi:(0.05 +. Util.Rng.float r 0.9) r m in
      let model = Rim.Mallows.to_rim mal in
      let tau = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      abs_float (Rim.Mallows.prob mal tau -. Rim.Model.prob model tau) < 1e-9)

let unit_mallows_normalization () =
  (* Z = prod (1 + phi + ... + phi^{i-1}); check log_z against direct sum. *)
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity 5) ~phi:0.3 in
  let z = ref 0. in
  Prefs.Ranking.all 5 (fun t ->
      z := !z +. (0.3 ** float_of_int (Prefs.Ranking.kendall_tau (Prefs.Ranking.identity 5) t)));
  Helpers.check_close ~eps:1e-9 "log Z" (log !z) (Rim.Mallows.log_z mal)

let unit_mallows_uniform_and_point () =
  let m = 4 in
  let sigma = Prefs.Ranking.identity m in
  let unif = Rim.Mallows.make ~center:sigma ~phi:1. in
  Prefs.Ranking.all m (fun t ->
      Helpers.check_close "uniform prob" (1. /. 24.) (Rim.Mallows.prob unif t));
  let point = Rim.Mallows.make ~center:sigma ~phi:0. in
  Helpers.check_close "point mass on center" 1. (Rim.Mallows.prob point sigma);
  Helpers.check_close "zero elsewhere" 0.
    (Rim.Mallows.prob point (Prefs.Ranking.of_list [ 1; 0; 2; 3 ]))

let unit_sampling_frequencies () =
  (* Empirical frequencies of a small Mallows match exact probabilities. *)
  let r = Helpers.rng 42 in
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity 3) ~phi:0.4 in
  let model = Rim.Mallows.to_rim mal in
  let counts = Hashtbl.create 6 in
  let n = 60_000 in
  for _ = 1 to n do
    let t = Rim.Model.sample model r in
    let key = Prefs.Ranking.to_array t in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Prefs.Ranking.all 3 (fun t ->
      let expected = Rim.Mallows.prob mal t in
      let got =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts (Prefs.Ranking.to_array t)))
        /. float_of_int n
      in
      Helpers.check_rel ~tol:0.1 "sample frequency" expected got)

let unit_insertion_positions_roundtrip () =
  let r = Helpers.rng 7 in
  for _ = 1 to 50 do
    let m = 2 + Util.Rng.int r 6 in
    let mal = Helpers.random_mallows r m in
    let model = Rim.Mallows.to_rim mal in
    let tau = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
    let js = Rim.Model.insertion_positions model tau in
    (* Rebuild the ranking by replaying the insertions. *)
    let rebuilt = ref (Prefs.Ranking.of_list []) in
    Array.iteri
      (fun i j ->
        rebuilt := Prefs.Ranking.insert !rebuilt j (Prefs.Ranking.item_at (Rim.Model.sigma model) i))
      js;
    if not (Prefs.Ranking.equal tau !rebuilt) then
      Alcotest.failf "roundtrip failed: %a vs %a" Prefs.Ranking.pp tau Prefs.Ranking.pp
        !rebuilt
  done

let unit_amp_example_2_2 () =
  (* Example 2.2: AMP(<a,b,c>, phi, {c > a}) gives Pr(<b,c,a>) =
     phi/(1+phi) * phi/(phi+phi^2) = phi/(1+phi)^2 ... with phi arbitrary.
     Using phi = 0.5. Items a=0 b=1 c=2. *)
  let phi = 0.5 in
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.of_list [ 0; 1; 2 ]) ~phi in
  let amp = Rim.Amp.make mal (Prefs.Partial_order.make ~edges:[ (2, 0) ]) in
  let tau = Prefs.Ranking.of_list [ 1; 2; 0 ] in
  let expected = phi /. ((1. +. phi) ** 2.) in
  Helpers.check_close ~eps:1e-12 "example 2.2" expected (Rim.Amp.density amp tau)

let unit_amp_consistency () =
  let r = Helpers.rng 11 in
  for _ = 1 to 30 do
    let m = 4 + Util.Rng.int r 3 in
    let mal = Helpers.random_mallows ~phi:(0.1 +. Util.Rng.float r 0.8) r m in
    let items = Util.Rng.permutation r m in
    let chain = [ items.(0); items.(1); items.(2) ] in
    let po = Prefs.Partial_order.of_chain chain in
    let amp = Rim.Amp.make mal po in
    for _ = 1 to 20 do
      let t = Rim.Amp.sample amp r in
      if not (Prefs.Partial_order.consistent po t) then
        Alcotest.failf "AMP sample violates condition: %a" Prefs.Ranking.pp t
    done
  done

let unit_amp_density_normalizes () =
  (* Sum of AMP densities over consistent rankings is 1; inconsistent
     rankings have density 0. *)
  let r = Helpers.rng 13 in
  for _ = 1 to 20 do
    let m = 4 in
    let mal = Helpers.random_mallows ~phi:(0.1 +. Util.Rng.float r 0.8) r m in
    let items = Util.Rng.permutation r m in
    let po = Prefs.Partial_order.of_chain [ items.(0); items.(1) ] in
    let amp = Rim.Amp.make mal po in
    let total = ref 0. in
    Prefs.Ranking.all m (fun t ->
        let d = Rim.Amp.density amp t in
        if not (Prefs.Partial_order.consistent po t) then
          Helpers.check_close "inconsistent has density 0" 0. d;
        total := !total +. d);
    Helpers.check_close ~eps:1e-9 "densities sum to 1" 1. !total
  done

let unit_amp_matches_empirical () =
  let r = Helpers.rng 17 in
  let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity 4) ~phi:0.3 in
  let po = Prefs.Partial_order.of_chain [ 3; 0 ] in
  let amp = Rim.Amp.make mal po in
  let n = 40_000 in
  let counts = Hashtbl.create 16 in
  for _ = 1 to n do
    let t = Rim.Amp.sample amp r in
    let key = Prefs.Ranking.to_array t in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Prefs.Ranking.all 4 (fun t ->
      let expected = Rim.Amp.density amp t in
      if expected > 0.02 then
        let got =
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts (Prefs.Ranking.to_array t)))
          /. float_of_int n
        in
        Helpers.check_rel ~tol:0.12 "AMP frequency" expected got)

let unit_mixture_normalizes () =
  let c1 = Rim.Mallows.make ~center:(Prefs.Ranking.identity 4) ~phi:0.3 in
  let c2 = Rim.Mallows.make ~center:(Prefs.Ranking.of_list [ 3; 2; 1; 0 ]) ~phi:0.6 in
  let mix = Rim.Mixture.make [ (2., c1); (1., c2) ] in
  let total = ref 0. in
  Prefs.Ranking.all 4 (fun t -> total := !total +. Rim.Mixture.prob mix t);
  Helpers.check_close ~eps:1e-9 "mixture sums to 1" 1. !total;
  let w = List.map fst (Rim.Mixture.components mix) in
  Helpers.check_close "weights normalized" 1. (List.fold_left ( +. ) 0. w)

let unit_expected_distance_monotone () =
  let m = 8 in
  let prev = ref (-1.) in
  List.iter
    (fun phi ->
      let d = Rim.Mallows.expected_distance ~m ~phi in
      if d <= !prev then Alcotest.failf "expected distance not increasing at phi=%.2f" phi;
      prev := d)
    [ 0.; 0.1; 0.3; 0.5; 0.7; 0.9; 1. ];
  (* phi = 1: uniform, expected distance = m(m-1)/4. *)
  Helpers.check_close ~eps:1e-9 "uniform mean distance"
    (float_of_int (m * (m - 1)) /. 4.)
    (Rim.Mallows.expected_distance ~m ~phi:1.)

let unit_learn_single () =
  let r = Helpers.rng 23 in
  let center = Prefs.Ranking.of_array (Util.Rng.permutation r 8) in
  let mal = Rim.Mallows.make ~center ~phi:0.3 in
  let sample = List.init 400 (fun _ -> Rim.Mallows.sample mal r) in
  let fitted = Rim.Learn.fit sample in
  if not (Prefs.Ranking.equal (Rim.Mallows.center fitted) center) then
    Alcotest.failf "center not recovered: %a vs %a" Prefs.Ranking.pp
      (Rim.Mallows.center fitted) Prefs.Ranking.pp center;
  Helpers.check_rel ~tol:0.25 "phi recovered" 0.3 (Rim.Mallows.phi fitted)

let unit_learn_mixture_separated () =
  let r = Helpers.rng 29 in
  let c1 = Prefs.Ranking.identity 6 in
  let c2 = Prefs.Ranking.reverse c1 in
  let m1 = Rim.Mallows.make ~center:c1 ~phi:0.2 in
  let m2 = Rim.Mallows.make ~center:c2 ~phi:0.2 in
  let sample =
    List.init 300 (fun i -> if i mod 2 = 0 then Rim.Mallows.sample m1 r else Rim.Mallows.sample m2 r)
  in
  let report = Rim.Learn.fit_mixture ~k:2 ~rng:r sample in
  let centers =
    List.map (fun (_, c) -> Rim.Mallows.center c) (Rim.Mixture.components report.Rim.Learn.mixture)
  in
  let found c = List.exists (fun c' -> Prefs.Ranking.kendall_tau c c' <= 2) centers in
  Alcotest.(check bool) "center 1 recovered (within 2 swaps)" true (found c1);
  Alcotest.(check bool) "center 2 recovered (within 2 swaps)" true (found c2)

let suites =
  [
    ( "rim.model",
      [
        tc "validation" `Quick unit_rim_validation;
        tc "example 2.1" `Quick unit_rim_example_2_1;
        prop_rim_probs_sum_to_one;
        tc "insertion positions roundtrip" `Quick unit_insertion_positions_roundtrip;
        tc "sampling frequencies" `Slow unit_sampling_frequencies;
      ] );
    ( "rim.mallows",
      [
        prop_mallows_kendall_equals_rim;
        tc "normalization constant" `Quick unit_mallows_normalization;
        tc "uniform and point mass" `Quick unit_mallows_uniform_and_point;
        tc "expected distance" `Quick unit_expected_distance_monotone;
      ] );
    ( "rim.amp",
      [
        tc "example 2.2" `Quick unit_amp_example_2_2;
        tc "samples respect condition" `Quick unit_amp_consistency;
        tc "density normalizes on support" `Quick unit_amp_density_normalizes;
        tc "density matches empirical frequency" `Slow unit_amp_matches_empirical;
      ] );
    ( "rim.mixture",
      [ tc "normalization" `Quick unit_mixture_normalizes ] );
    ( "rim.learn",
      [
        tc "single Mallows recovery" `Slow unit_learn_single;
        tc "separated mixture recovery" `Slow unit_learn_mixture_separated;
      ] );
  ]
