(* util: RNG, log-space arithmetic, statistics, timers, combinatorics. *)

let tc = Alcotest.test_case

let unit_rng_determinism () =
  let a = Util.Rng.make 99 and b = Util.Rng.make 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.int a 1000) (Util.Rng.int b 1000)
  done;
  (* split decorrelates *)
  let c = Util.Rng.make 99 in
  let d = Util.Rng.split c in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Util.Rng.int c 1000 = Util.Rng.int d 1000 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 50)

let unit_rng_bounds () =
  let r = Util.Rng.make 1 in
  for _ = 1 to 1000 do
    let x = Util.Rng.int r 7 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 7);
    let f = Util.Rng.float r 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let unit_rng_categorical () =
  let r = Util.Rng.make 2 in
  let w = [| 0.; 3.; 1.; 0. |] in
  let counts = Array.make 4 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Util.Rng.categorical r w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(0);
  Alcotest.(check int) "zero weight never drawn (last)" 0 counts.(3);
  let share = float_of_int counts.(1) /. float_of_int n in
  Alcotest.(check bool) "proportions approximately honored" true
    (abs_float (share -. 0.75) < 0.02);
  Alcotest.check_raises "all-zero weights rejected"
    (Invalid_argument "Rng.categorical: weights sum to zero") (fun () ->
      ignore (Util.Rng.categorical r [| 0.; 0. |]))

let unit_rng_permutation_uniformish () =
  let r = Util.Rng.make 3 in
  let counts = Hashtbl.create 6 in
  let n = 12_000 in
  for _ = 1 to n do
    let p = Util.Rng.permutation r 3 in
    let key = Array.to_list p in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all 6 permutations occur" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "roughly uniform" true
        (abs_float ((float_of_int c /. float_of_int n) -. (1. /. 6.)) < 0.02))
    counts

let unit_sample_without_replacement () =
  let r = Util.Rng.make 4 in
  for _ = 1 to 200 do
    let xs = Util.Rng.sample_without_replacement r 10 ~weight:(fun i -> float_of_int (i + 1)) 5 in
    Alcotest.(check int) "5 draws" 5 (List.length xs);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare xs));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 10)) xs
  done;
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Util.Rng.sample_without_replacement r 3 ~weight:(fun _ -> 1.) 4))

let unit_logspace () =
  Helpers.check_close ~eps:1e-12 "log_add" (log 3.) (Util.Logspace.log_add (log 1.) (log 2.));
  Alcotest.(check bool) "log_add with -inf" true
    (Util.Logspace.log_add Util.Logspace.neg_inf (log 2.) = log 2.);
  Helpers.check_close ~eps:1e-12 "log_sum_exp"
    (log 6.)
    (Util.Logspace.log_sum_exp [| log 1.; log 2.; log 3. |]);
  Alcotest.(check bool) "log_sum_exp of empty" true
    (Util.Logspace.log_sum_exp [||] = Util.Logspace.neg_inf);
  (* stability: huge magnitudes *)
  let v = Util.Logspace.log_sum_exp [| -1000.; -1000. |] in
  Helpers.check_close ~eps:1e-9 "stable at tiny values" (-1000. +. log 2.) v;
  Helpers.check_close ~eps:1e-12 "geometric series"
    (log (1. +. 0.5 +. 0.25))
    (Util.Logspace.geometric_series_log 0.5 3);
  Helpers.check_close ~eps:1e-12 "geometric series at phi=1" (log 4.)
    (Util.Logspace.geometric_series_log 1. 4);
  Helpers.check_close ~eps:1e-12 "geometric series at phi=0" 0.
    (Util.Logspace.geometric_series_log 0. 5)

let unit_stats () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Helpers.check_close "mean" 2.5 (Util.Stats.mean a);
  Helpers.check_close ~eps:1e-12 "variance" (5. /. 3.) (Util.Stats.variance a);
  Helpers.check_close "median even" 2.5 (Util.Stats.median a);
  Helpers.check_close "median odd" 2. (Util.Stats.median [| 3.; 1.; 2. |]);
  Helpers.check_close "p0 = min" 1. (Util.Stats.percentile a 0.);
  Helpers.check_close "p100 = max" 4. (Util.Stats.percentile a 100.);
  Helpers.check_close "relative error" 0.5 (Util.Stats.relative_error ~exact:2. 3.);
  Alcotest.(check bool) "relative error at exact=0" true
    (Util.Stats.relative_error ~exact:0. 1. = infinity);
  Helpers.check_close "relative error 0/0" 0. (Util.Stats.relative_error ~exact:0. 0.);
  let s = Util.Stats.summarize a in
  Alcotest.(check int) "summary n" 4 s.Util.Stats.n

let unit_timer_budget () =
  Alcotest.(check bool) "no_limit never expires" false
    (Util.Timer.expired Util.Timer.no_limit);
  (match Util.Timer.with_budget 60. (fun b -> Util.Timer.check b; 42) with
  | Some v -> Alcotest.(check int) "computation completes" 42 v
  | None -> Alcotest.fail "should not time out");
  (* A zero/negative budget means unlimited. *)
  (match Util.Timer.with_budget (-1.) (fun b -> Util.Timer.check b; 7) with
  | Some v -> Alcotest.(check int) "negative = unlimited" 7 v
  | None -> Alcotest.fail "should not time out");
  (* An already-expired budget raises on first check. *)
  let b = Util.Timer.budget 1e-9 in
  let burn = ref 0. in
  while Util.Timer.elapsed b <= 1e-9 do
    burn := !burn +. 1.
  done;
  Alcotest.(check bool) "expired detected" true (Util.Timer.expired b)

let unit_combinat () =
  Alcotest.(check int) "0!" 1 (Util.Combinat.factorial 0);
  Alcotest.(check int) "6!" 720 (Util.Combinat.factorial 6);
  Alcotest.check_raises "21! overflows"
    (Invalid_argument "Combinat.factorial: out of range") (fun () ->
      ignore (Util.Combinat.factorial 21));
  let count = ref 0 in
  Util.Combinat.iter_permutations 5 (fun _ -> incr count);
  Alcotest.(check int) "5! permutations" 120 !count;
  (* all distinct *)
  let seen = Hashtbl.create 120 in
  Util.Combinat.iter_permutations 4 (fun p -> Hashtbl.replace seen (Array.to_list p) ());
  Alcotest.(check int) "4! distinct" 24 (Hashtbl.length seen);
  let subs = ref 0 in
  Util.Combinat.iter_subsets [ 1; 2; 3 ] (fun _ -> incr subs);
  Alcotest.(check int) "2^3 subsets" 8 !subs;
  let nsubs = ref [] in
  Util.Combinat.iter_nonempty_subsets [ 1; 2 ] (fun s -> nsubs := s :: !nsubs);
  Alcotest.(check int) "3 nonempty subsets" 3 (List.length !nsubs);
  Alcotest.(check (list (list int)))
    "cartesian product"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Util.Combinat.cartesian_product [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check int) "C(10,3)" 120 (Util.Combinat.choose 10 3);
  Alcotest.(check int) "C(n,0)" 1 (Util.Combinat.choose 5 0);
  Alcotest.(check int) "C(n,k>n)" 0 (Util.Combinat.choose 3 4)

let prop_percentile_monotone =
  Helpers.qtest ~count:100 "percentiles are monotone in p"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let n = 1 + Util.Rng.int r 20 in
      let a = Array.init n (fun _ -> Util.Rng.float r 100.) in
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (Util.Stats.percentile a) ps in
      let rec mono = function
        | x :: (y :: _ as rest) -> x <= y +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

let suites =
  [
    ( "util",
      [
        tc "rng determinism and splitting" `Quick unit_rng_determinism;
        tc "rng bounds" `Quick unit_rng_bounds;
        tc "rng categorical" `Quick unit_rng_categorical;
        tc "rng permutations uniform" `Slow unit_rng_permutation_uniformish;
        tc "weighted sampling without replacement" `Quick unit_sample_without_replacement;
        tc "log-space arithmetic" `Quick unit_logspace;
        tc "statistics" `Quick unit_stats;
        tc "timer budgets" `Quick unit_timer_budget;
        tc "combinatorics" `Quick unit_combinat;
        prop_percentile_monotone;
      ] );
  ]
