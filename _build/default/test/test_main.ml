let () = Alcotest.run "hardq" (T_prefs.suites @ T_rim.suites @ T_solvers.suites @ T_sampling.suites @ T_ppd.suites @ T_data.suites @ T_util.suites @ T_world.suites @ T_props.suites @ T_exact2.suites)
