(* The item-side exact solvers (Po_solver, Subranking_solver): correctness
   against brute force, and cross-validation against the label-side exact
   solvers at domain sizes beyond brute-force enumeration. *)

let tc = Alcotest.test_case

let prop_po_solver_vs_brute =
  Helpers.qtest ~count:120 "Po_solver = brute force on random partial orders"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 4 + Util.Rng.int r 3 in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let k = 2 + Util.Rng.int r 3 in
      let items = Array.to_list (Array.sub (Util.Rng.permutation r m) 0 k) in
      let edges = ref [] in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b -> if i < j && Util.Rng.bool r then edges := (a, b) :: !edges)
            items)
        items;
      let po = Prefs.Partial_order.make_with_items ~items ~edges:!edges in
      let expected = Hardq.Brute.prob_partial_order model po in
      let actual = Hardq.Po_solver.prob model po in
      abs_float (expected -. actual) < 1e-9)

let unit_po_solver_basics () =
  let model = Rim.Mallows.to_rim (Helpers.random_mallows (Helpers.rng 1) 6) in
  Helpers.check_close "empty order" 1.
    (Hardq.Po_solver.prob model Prefs.Partial_order.empty);
  (* A full chain over all items pins the ranking exactly. *)
  let tau = Prefs.Ranking.of_array (Util.Rng.permutation (Helpers.rng 2) 6) in
  Helpers.check_close ~eps:1e-12 "full chain = point probability"
    (Rim.Model.prob model tau)
    (Hardq.Po_solver.prob_subranking model tau);
  (* A pair event under the uniform distribution is exactly 1/2. *)
  let unif = Rim.Model.uniform (Prefs.Ranking.identity 6) in
  Helpers.check_close ~eps:1e-12 "pair under uniform" 0.5
    (Hardq.Po_solver.prob_subranking unif (Prefs.Ranking.of_list [ 4; 1 ]))

let prop_subranking_solver_vs_brute =
  Helpers.qtest ~count:80 "Subranking_solver = brute force on random unions"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 6 in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:3 in
      let gu =
        Helpers.random_union
          (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
          r
          ~z:(1 + (seed mod 2))
      in
      match Hardq.Subranking_solver.prob model lab gu with
      | actual ->
          let expected = Hardq.Brute.prob model lab gu in
          abs_float (expected -. actual) < 1e-9
      | exception Hardq.Subranking_solver.Too_many _ -> true)

let unit_cross_validation_beyond_brute () =
  (* m = 12 is far beyond Ranking.all's reach: validate the two independent
     exact paths (label-side two-label DP vs item-side inclusion-exclusion
     over sub-rankings) against each other. *)
  let r = Helpers.rng 5 in
  let m = 12 in
  for _ = 1 to 10 do
    let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
    (* Sparse labels so the sub-ranking count stays within the IE guard. *)
    let lab = Helpers.random_labeling ~p:0.2 r ~m ~n_labels:4 in
    let gu =
      Helpers.random_union (Helpers.random_two_label_pattern ~n_labels:4) r ~z:2
    in
    match Hardq.Subranking_solver.prob model lab gu with
    | item_side ->
        let label_side = Hardq.Two_label.prob model lab gu in
        Helpers.check_close ~eps:1e-9 "two exact solver families agree at m=12"
          label_side item_side
    | exception Hardq.Subranking_solver.Too_many _ -> ()
  done

let unit_validates_sampler_beyond_brute () =
  (* Use the item-side exact solver as ground truth for MIS-AMP at m = 12
     on a general (chain) pattern no other exact solver handles cheaply. *)
  let r = Helpers.rng 7 in
  let m = 12 in
  let mal = Helpers.random_mallows ~phi:0.4 r m in
  let model = Rim.Mallows.to_rim mal in
  let lab =
    Prefs.Labeling.make
      (Array.init m (fun i -> if i < 2 then [ 0 ] else if i < 4 then [ 1 ] else if i < 6 then [ 2 ] else []))
  in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.chain [ [ 0 ]; [ 1 ]; [ 2 ] ])
  in
  let exact = Hardq.Subranking_solver.prob model lab gu in
  Alcotest.(check bool) "event is nontrivial" true (exact > 0.001 && exact < 0.999);
  let est = Hardq.Mis_amp.estimate_union ~n_per:3000 mal lab gu r in
  Helpers.check_rel ~tol:0.15 "MIS-AMP at m=12 vs item-side exact" exact
    est.Hardq.Estimate.value

let unit_too_many_guard () =
  let model = Rim.Mallows.to_rim (Helpers.random_mallows (Helpers.rng 9) 8) in
  let subs =
    List.init 20 (fun i ->
        Prefs.Ranking.of_list [ i mod 8; (i + 1 + (i mod 7)) mod 8 ])
  in
  let distinct =
    List.filter (fun s -> Prefs.Ranking.item_at s 0 <> Prefs.Ranking.item_at s 1) subs
  in
  match Hardq.Subranking_solver.prob_subrankings model distinct with
  | _ -> Alcotest.fail "expected Too_many"
  | exception Hardq.Subranking_solver.Too_many _ -> ()

let unit_disjoint_additivity () =
  (* Sub-rankings <a,b> and <b,a> are disjoint and exhaustive. *)
  let model = Rim.Mallows.to_rim (Helpers.random_mallows (Helpers.rng 11) 7) in
  let ab = Prefs.Ranking.of_list [ 2; 5 ] and ba = Prefs.Ranking.of_list [ 5; 2 ] in
  let p_ab = Hardq.Po_solver.prob_subranking model ab in
  let p_ba = Hardq.Po_solver.prob_subranking model ba in
  Helpers.check_close ~eps:1e-12 "complementary pair" 1. (p_ab +. p_ba);
  Helpers.check_close ~eps:1e-12 "union of both is certain" 1.
    (Hardq.Subranking_solver.prob_subrankings model [ ab; ba ])

let suites =
  [
    ( "solvers.item-side",
      [
        tc "po solver basics" `Quick unit_po_solver_basics;
        prop_po_solver_vs_brute;
        prop_subranking_solver_vs_brute;
        tc "cross-validation at m=12" `Quick unit_cross_validation_beyond_brute;
        tc "validates MIS-AMP at m=12" `Slow unit_validates_sampler_beyond_brute;
        tc "inclusion-exclusion guard" `Quick unit_too_many_guard;
        tc "disjoint additivity" `Quick unit_disjoint_additivity;
      ] );
  ]
