(* Rankings, partial orders, patterns, matching, decomposition. *)

let ranking_tc = Alcotest.test_case

let unit_ranking_basics () =
  let r = Prefs.Ranking.of_list [ 3; 1; 4; 0; 2 ] in
  Alcotest.(check int) "length" 5 (Prefs.Ranking.length r);
  Alcotest.(check int) "item_at 0" 3 (Prefs.Ranking.item_at r 0);
  Alcotest.(check int) "position_of 4" 2 (Prefs.Ranking.position_of r 4);
  Alcotest.(check bool) "prefers 3 2" true (Prefs.Ranking.prefers r 3 2);
  Alcotest.(check bool) "prefers 2 3" false (Prefs.Ranking.prefers r 2 3);
  Alcotest.(check (list int)) "insert" [ 3; 1; 9; 4; 0; 2 ]
    (Prefs.Ranking.to_list (Prefs.Ranking.insert r 2 9));
  Alcotest.(check (list int)) "remove" [ 3; 1; 0; 2 ]
    (Prefs.Ranking.to_list (Prefs.Ranking.remove r 4));
  Alcotest.(check (list int)) "prefix" [ 3; 1 ]
    (Prefs.Ranking.to_list (Prefs.Ranking.prefix r 2));
  Alcotest.(check (list int)) "restrict" [ 1; 0; 2 ]
    (Prefs.Ranking.to_list (Prefs.Ranking.restrict r (fun x -> x < 3)))

let unit_ranking_invalid () =
  Alcotest.check_raises "duplicate items" (Invalid_argument "Ranking.of_array: duplicate item")
    (fun () -> ignore (Prefs.Ranking.of_list [ 1; 2; 1 ]))

let unit_kendall_known () =
  let a = Prefs.Ranking.of_list [ 0; 1; 2; 3 ] in
  let b = Prefs.Ranking.of_list [ 3; 2; 1; 0 ] in
  Alcotest.(check int) "identity" 0 (Prefs.Ranking.kendall_tau a a);
  Alcotest.(check int) "reverse = max" 6 (Prefs.Ranking.kendall_tau a b);
  Alcotest.(check int) "max formula" 6 (Prefs.Ranking.kendall_tau_max 4);
  let c = Prefs.Ranking.of_list [ 1; 0; 2; 3 ] in
  Alcotest.(check int) "single swap" 1 (Prefs.Ranking.kendall_tau a c)

let prop_kendall_symmetric =
  Helpers.qtest ~count:200 "kendall_tau is symmetric"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 2 + Util.Rng.int r 7 in
      let a = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let b = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      Prefs.Ranking.kendall_tau a b = Prefs.Ranking.kendall_tau b a)

let prop_kendall_triangle =
  Helpers.qtest ~count:200 "kendall_tau satisfies the triangle inequality"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 2 + Util.Rng.int r 6 in
      let a = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let b = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let c = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      Prefs.Ranking.kendall_tau a c
      <= Prefs.Ranking.kendall_tau a b + Prefs.Ranking.kendall_tau b c)

let prop_kendall_brute =
  Helpers.qtest ~count:200 "kendall_tau equals the pairwise definition"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 2 + Util.Rng.int r 6 in
      let a = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let b = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let slow = ref 0 in
      for x = 0 to m - 1 do
        for y = x + 1 to m - 1 do
          let ax = Prefs.Ranking.prefers a x y and bx = Prefs.Ranking.prefers b x y in
          if ax <> bx then incr slow
        done
      done;
      Prefs.Ranking.kendall_tau a b = !slow)

let unit_partial_order () =
  let po = Prefs.Partial_order.make ~edges:[ (0, 2); (1, 2) ] in
  Alcotest.(check (list int)) "items" [ 0; 1; 2 ] (Prefs.Partial_order.items po);
  let exts = Prefs.Partial_order.linear_extensions po in
  Alcotest.(check int) "two linear extensions" 2 (List.length exts);
  Alcotest.(check int) "count agrees" 2 (Prefs.Partial_order.count_linear_extensions po);
  List.iter
    (fun e ->
      Alcotest.(check bool) "extension consistent" true
        (Prefs.Partial_order.consistent po e))
    exts;
  Alcotest.check_raises "cycle rejected" (Invalid_argument "Partial_order: cyclic edge set")
    (fun () -> ignore (Prefs.Partial_order.make ~edges:[ (0, 1); (1, 0) ]))

let unit_partial_order_tc () =
  let po = Prefs.Partial_order.of_chain [ 5; 3; 1 ] in
  let tc = Prefs.Partial_order.transitive_closure po in
  Alcotest.(check (list (pair int int)))
    "closure edges"
    [ (3, 1); (5, 1); (5, 3) ]
    (Prefs.Partial_order.edges tc)

let unit_partial_order_union () =
  let a = Prefs.Partial_order.of_chain [ 0; 1 ] in
  let b = Prefs.Partial_order.of_chain [ 1; 2 ] in
  (match Prefs.Partial_order.union a b with
  | Some u ->
      Alcotest.(check int) "merged extension count" 1
        (Prefs.Partial_order.count_linear_extensions u)
  | None -> Alcotest.fail "expected acyclic union");
  let c = Prefs.Partial_order.of_chain [ 2; 0 ] in
  (match Prefs.Partial_order.union a c with
  | Some u ->
      Alcotest.(check int) "chain 2>0>1" 1
        (Prefs.Partial_order.count_linear_extensions u)
  | None -> Alcotest.fail "expected acyclic union");
  let d = Prefs.Partial_order.of_chain [ 1; 0 ] in
  Alcotest.(check bool) "cyclic union detected" true
    (Prefs.Partial_order.union a d = None)

let prop_linear_extensions_consistent =
  Helpers.qtest ~count:100 "linear extensions are exactly the consistent orderings"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let n = 3 + Util.Rng.int r 3 in
      let edges = ref [] in
      for a = 0 to n - 2 do
        for b = a + 1 to n - 1 do
          if Util.Rng.float r 1. < 0.4 then edges := (a, b) :: !edges
        done
      done;
      let po = Prefs.Partial_order.make_with_items ~items:(List.init n Fun.id) ~edges:!edges in
      let exts = Prefs.Partial_order.linear_extensions po in
      let count = ref 0 in
      Prefs.Ranking.all n (fun t ->
          if Prefs.Partial_order.consistent po t then incr count);
      List.length exts = !count
      && List.for_all (fun e -> Prefs.Partial_order.consistent po e) exts)

let unit_pattern_classification () =
  let two = Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ] in
  Alcotest.(check bool) "two-label" true (Prefs.Pattern.is_two_label two);
  Alcotest.(check bool) "two-label is bipartite" true (Prefs.Pattern.is_bipartite two);
  let chain = Prefs.Pattern.chain [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  Alcotest.(check bool) "chain not bipartite" false (Prefs.Pattern.is_bipartite chain);
  let bip =
    Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
      ~edges:[ (0, 2); (0, 3); (1, 3) ]
  in
  Alcotest.(check bool) "benchmark-A shape is bipartite" true
    (Prefs.Pattern.is_bipartite bip);
  let u = Prefs.Pattern_union.make [ two; bip ] in
  Alcotest.(check bool) "union kind bipartite" true
    (Prefs.Pattern_union.kind u = Prefs.Pattern_union.Bipartite);
  let u2 = Prefs.Pattern_union.make [ two; chain ] in
  Alcotest.(check bool) "union kind general" true
    (Prefs.Pattern_union.kind u2 = Prefs.Pattern_union.General);
  let u3 = Prefs.Pattern_union.make [ two ] in
  Alcotest.(check bool) "union kind two-label" true
    (Prefs.Pattern_union.kind u3 = Prefs.Pattern_union.Two_label)

let unit_pattern_conjunction () =
  let g1 = Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ] in
  let g2 = Prefs.Pattern.two_label ~left:[ 2 ] ~right:[ 3 ] in
  let c = Prefs.Pattern.conjunction [ g1; g2 ] in
  Alcotest.(check int) "4 nodes" 4 (Prefs.Pattern.n_nodes c);
  Alcotest.(check (list (pair int int))) "edges shifted" [ (0, 1); (2, 3) ]
    (Prefs.Pattern.edges c)

let unit_pattern_invalid () =
  Alcotest.check_raises "cyclic pattern" (Invalid_argument "Pattern.make: cyclic edges")
    (fun () ->
      ignore (Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ] ] ~edges:[ (0, 1); (1, 0) ]));
  Alcotest.check_raises "empty node"
    (Invalid_argument "Pattern.make: empty node conjunction") (fun () ->
      ignore (Prefs.Pattern.make ~nodes:[ [] ] ~edges:[]))

let unit_matcher_example_2_3 () =
  (* Figure 1/2: tau0 = <Trump, Clinton, Sanders, Rubio>, F > M matches via
     Clinton > Sanders. Items: 0 Trump(M), 1 Clinton(F), 2 Sanders(M), 3 Rubio(M);
     labels: 0 = F, 1 = M. *)
  let lab = Prefs.Labeling.make [| [ 1 ]; [ 0 ]; [ 1 ]; [ 1 ] |] in
  let tau = Prefs.Ranking.of_list [ 0; 1; 2; 3 ] in
  let g = Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ] in
  (match Prefs.Matcher.embedding lab g tau with
  | Some delta ->
      Alcotest.(check int) "F at position 1" 1 delta.(0);
      Alcotest.(check int) "M at position 2" 2 delta.(1)
  | None -> Alcotest.fail "expected a match");
  (* A ranking with all men before Clinton does not match. *)
  let tau2 = Prefs.Ranking.of_list [ 0; 2; 3; 1 ] in
  Alcotest.(check bool) "no match" false (Prefs.Matcher.matches lab g tau2)

let prop_matcher_equals_exhaustive =
  Helpers.qtest ~count:200 "greedy embedding = exhaustive embedding search"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 5 in
      let lab = Helpers.random_labeling r ~m ~n_labels:3 in
      let g = Helpers.random_general_pattern r ~n_labels:3 ~n_nodes:3 in
      let tau = Prefs.Ranking.of_array (Util.Rng.permutation r m) in
      let q = Prefs.Pattern.n_nodes g in
      (* Exhaustive search over all node -> position maps. *)
      let found = ref false in
      let delta = Array.make q 0 in
      let rec go v =
        if !found then ()
        else if v = q then begin
          let ok_labels =
            List.for_all
              (fun v ->
                Prefs.Labeling.has_all lab (Prefs.Ranking.item_at tau delta.(v))
                  (Prefs.Pattern.node g v))
              (List.init q Fun.id)
          in
          let ok_edges =
            List.for_all (fun (a, b) -> delta.(a) < delta.(b)) (Prefs.Pattern.edges g)
          in
          if ok_labels && ok_edges then found := true
        end
        else
          for p = 0 to m - 1 do
            delta.(v) <- p;
            go (v + 1)
          done
      in
      go 0;
      Prefs.Matcher.matches lab g tau = !found)

let unit_decompose_figure_3 () =
  (* Figure 3 of the paper. Items 1..4 are encoded as 0..3. g1 says
     1 ≻ {2,3} and 1 ≻ 4 (a V with an alternative middle item); g2 says
     {1,2} ≻ 3 and {1,2} ≻ 4. The union decomposes into three distinct
     partial orders (υ1 = {1≻2, 1≻4}, υ2 = {1≻3, 1≻4}, υ3 = {2≻3, 2≻4})
     and six sub-rankings ψ1..ψ6. Label 4 marks "{2,3}", label 5 marks
     "{1,2}". *)
  let lab = Prefs.Labeling.make [| [ 0; 5 ]; [ 1; 4; 5 ]; [ 2; 4 ]; [ 3 ] |] in
  let g1 =
    Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 4 ]; [ 3 ] ] ~edges:[ (0, 1); (0, 2) ]
  in
  let g2 =
    Prefs.Pattern.make ~nodes:[ [ 5 ]; [ 2 ]; [ 3 ] ] ~edges:[ (0, 1); (0, 2) ]
  in
  let gu = Prefs.Pattern_union.make [ g1; g2 ] in
  let pos1 = Prefs.Decompose.partial_orders lab g1 in
  Alcotest.(check int) "g1 yields 2 partial orders" 2 (List.length pos1);
  let pos2 = Prefs.Decompose.partial_orders lab g2 in
  Alcotest.(check int) "g2 yields 2 partial orders" 2 (List.length pos2);
  let subs = Prefs.Decompose.subrankings lab gu in
  Alcotest.(check int) "6 sub-rankings" 6 (List.length subs);
  let expected =
    [ [ 0; 1; 3 ]; [ 0; 3; 1 ]; [ 0; 2; 3 ]; [ 0; 3; 2 ]; [ 1; 2; 3 ]; [ 1; 3; 2 ] ]
  in
  List.iter
    (fun e ->
      if not (List.exists (fun s -> Prefs.Ranking.to_list s = e) subs) then
        Alcotest.failf "missing sub-ranking %s"
          (String.concat "," (List.map string_of_int e)))
    expected

let prop_decompose_equivalence =
  Helpers.qtest ~count:120 "tau |= G iff tau |= some sub-ranking of G"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 5 in
      let lab = Helpers.random_labeling r ~m ~n_labels:3 in
      let gu =
        Helpers.random_union
          (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
          r
          ~z:(1 + (seed mod 2))
      in
      let subs = Prefs.Decompose.subrankings lab gu in
      let ok = ref true in
      Prefs.Ranking.all m (fun tau ->
          let direct = Prefs.Matcher.matches_union lab gu tau in
          let via_subs =
            List.exists (fun sub -> Prefs.Matcher.matches_subranking tau ~sub) subs
          in
          if direct <> via_subs then ok := false);
      !ok)

let unit_subranking_match () =
  let tau = Prefs.Ranking.of_list [ 4; 1; 3; 0; 2 ] in
  let yes = Prefs.Ranking.of_list [ 4; 3; 2 ] in
  let no = Prefs.Ranking.of_list [ 3; 4 ] in
  Alcotest.(check bool) "subsequence matches" true
    (Prefs.Matcher.matches_subranking tau ~sub:yes);
  Alcotest.(check bool) "wrong order rejected" false
    (Prefs.Matcher.matches_subranking tau ~sub:no);
  Alcotest.(check bool) "empty sub matches" true
    (Prefs.Matcher.matches_subranking tau ~sub:(Prefs.Ranking.of_list []))

let suites =
  [
    ( "prefs.ranking",
      [
        ranking_tc "basics" `Quick unit_ranking_basics;
        ranking_tc "invalid input" `Quick unit_ranking_invalid;
        ranking_tc "kendall known values" `Quick unit_kendall_known;
        prop_kendall_symmetric;
        prop_kendall_triangle;
        prop_kendall_brute;
      ] );
    ( "prefs.partial_order",
      [
        ranking_tc "construction and extensions" `Quick unit_partial_order;
        ranking_tc "transitive closure" `Quick unit_partial_order_tc;
        ranking_tc "union" `Quick unit_partial_order_union;
        prop_linear_extensions_consistent;
      ] );
    ( "prefs.pattern",
      [
        ranking_tc "classification" `Quick unit_pattern_classification;
        ranking_tc "conjunction" `Quick unit_pattern_conjunction;
        ranking_tc "invalid patterns" `Quick unit_pattern_invalid;
      ] );
    ( "prefs.matcher",
      [
        ranking_tc "example 2.3" `Quick unit_matcher_example_2_3;
        prop_matcher_equals_exhaustive;
        ranking_tc "sub-ranking matching" `Quick unit_subranking_match;
      ] );
    ( "prefs.decompose",
      [
        ranking_tc "figure 3" `Quick unit_decompose_figure_3;
        prop_decompose_equivalence;
      ] );
  ]
