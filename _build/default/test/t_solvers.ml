(* Exact solvers vs the brute-force oracle, plus solver-specific behaviour. *)

let m_small = 6

let oracle_vs solver_name solver r ~pat_gen ~z ~n_labels =
  let m = m_small in
  let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
  let lab = Helpers.random_labeling r ~m ~n_labels in
  let gu = Helpers.random_union (fun r -> pat_gen r) r ~z in
  let expected = Hardq.Brute.prob model lab gu in
  let actual = solver model lab gu in
  Helpers.check_close ~eps:1e-9
    (Printf.sprintf "%s vs brute (%s)" solver_name
       (Format.asprintf "%a" Prefs.Pattern_union.pp gu))
    expected actual;
  true

let test_two_label_oracle =
  Helpers.qtest ~count:150 "two-label solver = brute force on random unions"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      oracle_vs "two-label" (Hardq.Two_label.prob ?budget:None) r
        ~pat_gen:(Helpers.random_two_label_pattern ~n_labels:4)
        ~z:(1 + (seed mod 3))
        ~n_labels:4)

let test_bipartite_oracle =
  Helpers.qtest ~count:120 "bipartite solver = brute force on random unions"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      oracle_vs "bipartite" (Hardq.Bipartite.prob ?budget:None) r
        ~pat_gen:(Helpers.random_bipartite_pattern ~n_labels:4 ~n_left:2 ~n_right:2)
        ~z:(1 + (seed mod 2))
        ~n_labels:4)

let test_bipartite_basic_oracle =
  Helpers.qtest ~count:60 "basic bipartite solver = brute force"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      oracle_vs "bipartite-basic" (Hardq.Bipartite.prob_basic ?budget:None) r
        ~pat_gen:(Helpers.random_bipartite_pattern ~n_labels:4 ~n_left:2 ~n_right:2)
        ~z:(1 + (seed mod 2))
        ~n_labels:4)

let test_bipartite_matches_two_label =
  Helpers.qtest ~count:80 "bipartite solver handles two-label unions identically"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 7 in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:4 in
      let gu =
        Helpers.random_union (Helpers.random_two_label_pattern ~n_labels:4) r
          ~z:(1 + (seed mod 3))
      in
      let a = Hardq.Two_label.prob model lab gu in
      let b = Hardq.Bipartite.prob model lab gu in
      Helpers.check_close ~eps:1e-9 "two-label vs bipartite" a b;
      true)

let test_general_pattern_oracle =
  Helpers.qtest ~count:80 "general single-pattern solver = brute force (DAGs)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = m_small in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:3 in
      let g = Helpers.random_general_pattern r ~n_labels:3 ~n_nodes:3 in
      let expected = Hardq.Brute.prob_pattern model lab g in
      let actual = Hardq.Pattern_solver.prob model lab g in
      Helpers.check_close ~eps:1e-9 "pattern solver vs brute" expected actual;
      true)

let test_general_forced_vs_bipartite =
  Helpers.qtest ~count:60 "signature DP agrees with bipartite DP on bipartite patterns"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = m_small in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:4 in
      let g = Helpers.random_bipartite_pattern r ~n_labels:4 ~n_left:2 ~n_right:2 in
      let a = Hardq.Pattern_solver.prob_general model lab g in
      let b = Hardq.Bipartite.prob model lab (Prefs.Pattern_union.singleton g) in
      Helpers.check_close ~eps:1e-9 "signature vs bipartite" a b;
      true)

let test_general_union_oracle =
  Helpers.qtest ~count:60 "inclusion-exclusion general solver = brute force"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      oracle_vs "general" (Hardq.General.prob ?budget:None) r
        ~pat_gen:(Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
        ~z:(1 + (seed mod 2))
        ~n_labels:3)

let test_upper_bound_holds =
  Helpers.qtest ~count:80 "k-edge relaxation upper-bounds the exact probability"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = m_small in
      let mal = Helpers.random_mallows r m in
      let model = Rim.Mallows.to_rim mal in
      let lab = Helpers.random_labeling r ~m ~n_labels:3 in
      let gu =
        Helpers.random_union
          (Helpers.random_general_pattern ~n_labels:3 ~n_nodes:3)
          r
          ~z:(1 + (seed mod 2))
      in
      let exact = Hardq.Brute.prob model lab gu in
      let ub1 = Hardq.Upper_bound.upper_bound ~k:1 model lab gu in
      let ub2 = Hardq.Upper_bound.upper_bound ~k:2 model lab gu in
      if ub1 +. 1e-9 < exact then
        Alcotest.failf "1-edge UB %.9g below exact %.9g" ub1 exact;
      if ub2 +. 1e-9 < exact then
        Alcotest.failf "2-edge UB %.9g below exact %.9g" ub2 exact;
      (* More edges tighten the relaxation. *)
      if ub2 > ub1 +. 1e-9 then
        Alcotest.failf "2-edge UB %.9g looser than 1-edge UB %.9g" ub2 ub1;
      true)

let unit_example_4_2 () =
  (* σ = <a,b,c>, items a,c carry l1, item b carries r1; G = {l1 > r1}.
     Hand-checkable tiny instance: violating rankings are those where the
     first l1 item appears after the last r1 item. *)
  let sigma = Prefs.Ranking.of_list [ 0; 1; 2 ] in
  let lab = Prefs.Labeling.make [| [ 0 ]; [ 1 ]; [ 0 ] |] in
  let mal = Rim.Mallows.make ~center:sigma ~phi:0.5 in
  let model = Rim.Mallows.to_rim mal in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
  in
  let expected = Hardq.Brute.prob model lab gu in
  Helpers.check_close "two-label example" expected (Hardq.Two_label.prob model lab gu);
  Helpers.check_close "bipartite example" expected (Hardq.Bipartite.prob model lab gu)

let unit_certain_events () =
  (* With every item labeled both 0 and 1 and phi = 1 (uniform), the pattern
     0 > 1 is satisfied unless m < 2. *)
  let m = 5 in
  let sigma = Prefs.Ranking.identity m in
  let lab = Prefs.Labeling.make (Array.make m [ 0; 1 ]) in
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:sigma ~phi:1.) in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
  in
  Helpers.check_close "certain two-label" 1. (Hardq.Two_label.prob model lab gu);
  Helpers.check_close "certain bipartite" 1. (Hardq.Bipartite.prob model lab gu)

let unit_impossible_events () =
  (* Label 1 appears on no item: any pattern mentioning it has probability 0. *)
  let m = 5 in
  let sigma = Prefs.Ranking.identity m in
  let lab = Prefs.Labeling.make (Array.make m [ 0 ]) in
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:sigma ~phi:0.5) in
  let gu =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
  in
  Helpers.check_close "impossible two-label" 0. (Hardq.Two_label.prob model lab gu);
  Helpers.check_close "impossible bipartite" 0. (Hardq.Bipartite.prob model lab gu);
  Helpers.check_close "impossible general" 0. (Hardq.General.prob model lab gu)

let unit_phi_zero_point_mass () =
  (* phi = 0: the model is a point mass on sigma; probability is the 0/1
     indicator of sigma matching the pattern. *)
  let sigma = Prefs.Ranking.of_list [ 2; 0; 1 ] in
  let lab = Prefs.Labeling.make [| [ 0 ]; [ 1 ]; [ 2 ] |] in
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:sigma ~phi:0.) in
  (* sigma ranks item2(label 2) > item0(label 0) > item1(label 1) *)
  let holds =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 2 ] ~right:[ 1 ])
  in
  let fails =
    Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 1 ] ~right:[ 2 ])
  in
  Helpers.check_close "phi=0 holds" 1. (Hardq.Two_label.prob model lab holds);
  Helpers.check_close "phi=0 fails" 0. (Hardq.Two_label.prob model lab fails);
  Helpers.check_close "phi=0 bipartite holds" 1. (Hardq.Bipartite.prob model lab holds);
  Helpers.check_close "phi=0 bipartite fails" 0. (Hardq.Bipartite.prob model lab fails)

let unit_chain_needs_middle_item () =
  (* Example 4.4 of the paper: the chain la > lb > lc is NOT implied by its
     min/max relaxation. Ranking <b1, a, c, b2> satisfies all min/max
     constraints but not the chain. The exact solver must see the
     difference on a model concentrated on that ranking. *)
  let sigma = Prefs.Ranking.of_list [ 1; 0; 3; 2 ] in
  (* items: 0 = a(la), 1 = b1(lb), 2 = b2(lb), 3 = c(lc); sigma = <b1,a,c,b2> *)
  let lab = Prefs.Labeling.make [| [ 0 ]; [ 1 ]; [ 1 ]; [ 2 ] |] in
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:sigma ~phi:0.) in
  let chain = Prefs.Pattern.chain [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let p_chain = Hardq.Pattern_solver.prob model lab chain in
  Helpers.check_close "chain on <b1,a,c,b2>" 0. p_chain;
  let ub =
    Hardq.Upper_bound.upper_bound ~k:3 model lab (Prefs.Pattern_union.singleton chain)
  in
  Helpers.check_close "min/max relaxation is satisfied" 1. ub

let unit_single_item_domain () =
  (* m = 1: a two-label pattern needs two ordered items, so it can hold only
     if one item carries both labels... it cannot (strict order). *)
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:(Prefs.Ranking.identity 1) ~phi:0.5) in
  let lab = Prefs.Labeling.make [| [ 0; 1 ] |] in
  let gu = Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ]) in
  Helpers.check_close "m=1 two-label" 0. (Hardq.Two_label.prob model lab gu);
  Helpers.check_close "m=1 bipartite" 0. (Hardq.Bipartite.prob model lab gu);
  Helpers.check_close "m=1 brute" 0. (Hardq.Brute.prob model lab gu)

let unit_same_conjunction_both_sides () =
  (* Edge {l > l}: needs two distinct items with label l in some order —
     certain iff at least two items carry l. *)
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:(Prefs.Ranking.identity 4) ~phi:0.7) in
  let gu =
    Prefs.Pattern_union.singleton
      (Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 0 ] ] ~edges:[ (0, 1) ])
  in
  let lab2 = Prefs.Labeling.make [| [ 0 ]; [ 0 ]; []; [] |] in
  Helpers.check_close "two witnesses" 1. (Hardq.Bipartite.prob model lab2 gu);
  Helpers.check_close "two witnesses brute" 1. (Hardq.Brute.prob model lab2 gu);
  let lab1 = Prefs.Labeling.make [| [ 0 ]; []; []; [] |] in
  Helpers.check_close "one witness" 0. (Hardq.Bipartite.prob model lab1 gu);
  Helpers.check_close "one witness brute" 0. (Hardq.Brute.prob model lab1 gu)

let unit_budget_timeout_raises () =
  let r = Helpers.rng 71 in
  let m = 40 in
  let model = Rim.Mallows.to_rim (Helpers.random_mallows ~phi:0.5 r m) in
  let lab = Helpers.random_labeling r ~m ~n_labels:8 in
  let gu =
    Helpers.random_union (Helpers.random_two_label_pattern ~n_labels:8) r ~z:5
  in
  (* Burn the budget before solving. *)
  let b = Util.Timer.budget 1e-9 in
  let spin = ref 0. in
  while Util.Timer.elapsed b <= 1e-9 do
    spin := !spin +. 1.
  done;
  match Hardq.Two_label.prob ~budget:b model lab gu with
  | _ -> Alcotest.fail "expected Out_of_time"
  | exception Util.Timer.Out_of_time -> ()

let unit_isolated_node_patterns () =
  (* A bipartite pattern with an isolated node: the node only demands a
     witness somewhere in the ranking. *)
  let model = Rim.Mallows.to_rim (Rim.Mallows.make ~center:(Prefs.Ranking.identity 4) ~phi:0.6) in
  let lab = Prefs.Labeling.make [| [ 0 ]; [ 1 ]; [ 2 ]; [] |] in
  let with_iso =
    Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ]; [ 2 ] ] ~edges:[ (0, 1) ]
  in
  let without =
    Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ] ] ~edges:[ (0, 1) ]
  in
  let p_with = Hardq.Bipartite.prob model lab (Prefs.Pattern_union.singleton with_iso) in
  let p_without = Hardq.Bipartite.prob model lab (Prefs.Pattern_union.singleton without) in
  Helpers.check_close "witnessable isolated node is free" p_without p_with;
  Helpers.check_close "matches brute" (Hardq.Brute.prob model lab (Prefs.Pattern_union.singleton with_iso)) p_with;
  (* Isolated node with no witness kills the pattern. *)
  let doomed = Prefs.Pattern.make ~nodes:[ [ 0 ]; [ 1 ]; [ 7 ] ] ~edges:[ (0, 1) ] in
  Helpers.check_close "unwitnessable isolated node" 0.
    (Hardq.Bipartite.prob model lab (Prefs.Pattern_union.singleton doomed))

let unit_union_dedup_and_monotone () =
  let r = Helpers.rng 73 in
  let m = 6 in
  let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
  let lab = Helpers.random_labeling r ~m ~n_labels:4 in
  let g1 = Helpers.random_two_label_pattern r ~n_labels:4 in
  let g2 = Helpers.random_two_label_pattern r ~n_labels:4 in
  (* Duplicates in a union change nothing. *)
  let u1 = Prefs.Pattern_union.make [ g1; g1; g1 ] in
  Alcotest.(check int) "dedup" 1 (Prefs.Pattern_union.size u1);
  let p1 = Hardq.Two_label.prob model lab (Prefs.Pattern_union.singleton g1) in
  Helpers.check_close "dup union" p1 (Hardq.Two_label.prob model lab u1);
  (* Unions are monotone: Pr(g1 U g2) >= max(Pr(g1), Pr(g2)). *)
  let p2 = Hardq.Two_label.prob model lab (Prefs.Pattern_union.singleton g2) in
  let pu = Hardq.Two_label.prob model lab (Prefs.Pattern_union.make [ g1; g2 ]) in
  if pu +. 1e-9 < max p1 p2 then
    Alcotest.failf "union not monotone: %g < max(%g, %g)" pu p1 p2;
  if pu > p1 +. p2 +. 1e-9 then
    Alcotest.failf "union above union bound: %g > %g + %g" pu p1 p2

let prop_union_bounds =
  Helpers.qtest ~count:100 "max(Pr(gi)) <= Pr(U gi) <= sum Pr(gi)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 6 in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:4 in
      let gs =
        List.init 3 (fun _ -> Helpers.random_bipartite_pattern r ~n_labels:4 ~n_left:1 ~n_right:2)
      in
      let ps =
        List.map
          (fun g -> Hardq.Bipartite.prob model lab (Prefs.Pattern_union.singleton g))
          gs
      in
      let pu = Hardq.Bipartite.prob model lab (Prefs.Pattern_union.make gs) in
      let mx = List.fold_left max 0. ps and sm = List.fold_left ( +. ) 0. ps in
      pu +. 1e-9 >= mx && pu <= sm +. 1e-9)

let prop_general_matches_bipartite_on_unions =
  Helpers.qtest ~count:50 "inclusion-exclusion = bipartite DP on bipartite unions"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Helpers.rng seed in
      let m = 6 in
      let model = Rim.Mallows.to_rim (Helpers.random_mallows r m) in
      let lab = Helpers.random_labeling r ~m ~n_labels:4 in
      let gu =
        Helpers.random_union
          (Helpers.random_bipartite_pattern ~n_labels:4 ~n_left:1 ~n_right:2)
          r ~z:2
      in
      let a = Hardq.General.prob model lab gu in
      let b = Hardq.Bipartite.prob model lab gu in
      abs_float (a -. b) < 1e-9)

let suites =
  [
    ( "solvers.edge-cases",
      [
        Alcotest.test_case "single-item domain" `Quick unit_single_item_domain;
        Alcotest.test_case "same conjunction on both edge ends" `Quick
          unit_same_conjunction_both_sides;
        Alcotest.test_case "budget timeout raises" `Quick unit_budget_timeout_raises;
        Alcotest.test_case "isolated nodes" `Quick unit_isolated_node_patterns;
        Alcotest.test_case "union dedup and monotonicity" `Quick
          unit_union_dedup_and_monotone;
        prop_union_bounds;
        prop_general_matches_bipartite_on_unions;
      ] );
    ( "solvers",
      [
        Alcotest.test_case "example 4.2 shape" `Quick unit_example_4_2;
        Alcotest.test_case "certain events" `Quick unit_certain_events;
        Alcotest.test_case "impossible events" `Quick unit_impossible_events;
        Alcotest.test_case "phi=0 point mass" `Quick unit_phi_zero_point_mass;
        Alcotest.test_case "chain vs min/max relaxation (ex 4.4)" `Quick
          unit_chain_needs_middle_item;
        test_two_label_oracle;
        test_bipartite_oracle;
        test_bipartite_basic_oracle;
        test_bipartite_matches_two_label;
        test_general_pattern_oracle;
        test_general_forced_vs_bipartite;
        test_general_union_oracle;
        test_upper_bound_holds;
      ] );
  ]
