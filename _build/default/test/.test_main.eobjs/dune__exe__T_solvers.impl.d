test/t_solvers.ml: Alcotest Array Format Hardq Helpers List Prefs Printf QCheck Rim Util
