test/t_exact2.ml: Alcotest Array Hardq Helpers List Prefs QCheck Rim Util
