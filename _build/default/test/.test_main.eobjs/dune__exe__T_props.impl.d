test/t_props.ml: Array Float Format Hardq Helpers List Ppd Prefs Printf QCheck Rim String Util
