test/t_data.ml: Alcotest Array Datasets Hardq Hashtbl Helpers List Ppd Prefs Printf Rim Util
