test/t_prefs.ml: Alcotest Array Fun Helpers List Prefs QCheck String Util
