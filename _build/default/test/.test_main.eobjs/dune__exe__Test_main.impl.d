test/test_main.ml: Alcotest T_data T_exact2 T_ppd T_prefs T_props T_rim T_sampling T_solvers T_util T_world
