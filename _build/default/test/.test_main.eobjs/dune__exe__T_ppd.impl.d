test/t_ppd.ml: Alcotest Array Hardq Helpers List Option Ppd Prefs Printf Rim
