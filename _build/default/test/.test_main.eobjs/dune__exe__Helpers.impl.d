test/helpers.ml: Alcotest Array Fun List Prefs QCheck QCheck_alcotest Rim Util
