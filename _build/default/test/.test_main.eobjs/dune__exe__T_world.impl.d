test/t_world.ml: Alcotest Fun Hardq Helpers List Ppd Prefs Printf Rim T_ppd Util
