test/t_sampling.ml: Alcotest Array Hardq Helpers List Prefs Rim Util
