test/t_util.ml: Alcotest Array Hashtbl Helpers List Option QCheck Util
