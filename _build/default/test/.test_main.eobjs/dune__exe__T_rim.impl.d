test/t_rim.ml: Alcotest Array Hashtbl Helpers List Option Prefs QCheck Rim Util
