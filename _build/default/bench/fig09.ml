(* Figure 9: rejection sampling vs MIS-AMP-lite for the rare event
   sigma_m > sigma_1 under MAL(sigma, 0.1), m = 5..10.

   Paper shape: RS needs exponentially many samples (time grows
   exponentially in m, since Pr ~ phi^(m-1)); MIS-AMP-lite is flat. *)

let run ~full () =
  Exp_util.header "Figure 9" "rejection sampling vs MIS-AMP-lite on a rare event";
  Exp_util.note
    "paper: RS time grows exponentially with m; MIS-AMP-lite stays flat";
  let repeats = if full then 10 else 3 in
  let max_samples = if full then 50_000_000 else 5_000_000 in
  List.iter
    (fun m ->
      let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity m) ~phi:0.1 in
      let model = Rim.Mallows.to_rim mal in
      (* labels: 0 = last item of sigma, 1 = first item *)
      let lab =
        Prefs.Labeling.make
          (Array.init m (fun i ->
               if i = m - 1 then [ 0 ] else if i = 0 then [ 1 ] else []))
      in
      let gu =
        Prefs.Pattern_union.singleton (Prefs.Pattern.two_label ~left:[ 0 ] ~right:[ 1 ])
      in
      let exact = Hardq.Two_label.prob model lab gu in
      (* RS until 1% relative error (optimistic stopping, as in the paper). *)
      let rs_times = ref [] and rs_exhausted = ref 0 in
      for rep = 1 to repeats do
        let rng = Util.Rng.make (900 + (m * 17) + rep) in
        let (), dt =
          Util.Timer.time (fun () ->
              match
                Hardq.Rejection.samples_until ~exact ~rel_tol:0.01 ~max_samples
                  model lab gu rng
              with
              | `Converged _ -> ()
              | `Exhausted -> incr rs_exhausted)
        in
        rs_times := dt :: !rs_times
      done;
      (* MIS-AMP-lite with one proposal distribution. *)
      let sub = Prefs.Ranking.of_list [ m - 1; 0 ] in
      let lite_times = ref [] and lite_errs = ref [] in
      for rep = 1 to repeats do
        let rng = Util.Rng.make (1900 + (m * 31) + rep) in
        let plan = Hardq.Mis_amp_lite.prepare_subrankings mal [ sub ] in
        (* A single sub-ranking means nothing is pruned: compensation would
           only multiply an unbiased IS estimate by the modal-mass ratio, so
           it is off here (the paper reports only runtime for this figure). *)
        let est, dt =
          Util.Timer.time (fun () ->
              Hardq.Mis_amp_lite.estimate_with_plan ~compensate:false plan ~d:1
                ~n_per:20_000 rng)
        in
        lite_times := dt :: !lite_times;
        lite_errs := Exp_util.rel_err ~exact est.Hardq.Estimate.value :: !lite_errs
      done;
      Exp_util.row
        "m=%-3d exact=%.3e | RS median %8.3fs%s | MIS-AMP-lite median %6.3fs \
         (rel err %s)"
        m exact
        (Exp_util.median_of !rs_times)
        (if !rs_exhausted > 0 then
           Printf.sprintf " (%d/%d hit the %d-sample cap)" !rs_exhausted repeats
             max_samples
         else "")
        (Exp_util.median_of !lite_times)
        (Exp_util.err_summary !lite_errs))
    (if full then [ 5; 6; 7; 8; 9; 10 ] else [ 5; 6; 7; 8 ])
