bench/fig09.ml: Array Exp_util Hardq List Prefs Printf Rim Util
