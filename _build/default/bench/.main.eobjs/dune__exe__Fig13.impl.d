bench/fig13.ml: Datasets Exp_util Hardq List Prefs Printf Util
