bench/fig15.ml: Datasets Exp_util Hardq List Ppd Util
