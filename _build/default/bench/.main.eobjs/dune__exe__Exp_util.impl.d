bench/exp_util.ml: Array Printf String Util
