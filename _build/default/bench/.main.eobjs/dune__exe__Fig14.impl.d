bench/fig14.ml: Datasets Exp_util Hardq List Ppd Prefs Printf Util
