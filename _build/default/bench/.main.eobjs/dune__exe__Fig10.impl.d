bench/fig10.ml: Datasets Exp_util Hardq List Util
