bench/fig06.ml: Datasets Exp_util Hardq List Option Printf
