bench/micro.ml: Analyze Array Bechamel Benchmark Datasets Exp_util Hardq Hashtbl Instance List Measure Prefs Printf Rim Staged Test Time Toolkit Util
