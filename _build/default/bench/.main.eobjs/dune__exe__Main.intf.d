bench/main.mli:
