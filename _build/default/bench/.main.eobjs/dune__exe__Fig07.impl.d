bench/fig07.ml: Datasets Exp_util Hardq List Printf
