bench/main.ml: Array Fig04 Fig05 Fig06 Fig07 Fig08 Fig09 Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 List Micro Printexc Printf String Sys Util
