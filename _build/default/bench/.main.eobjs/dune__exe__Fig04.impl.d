bench/fig04.ml: Array Datasets Exp_util Hardq Hashtbl List Ppd Prefs Printf Rim Util
