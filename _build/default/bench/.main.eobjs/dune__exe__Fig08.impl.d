bench/fig08.ml: Datasets Exp_util List Ppd Util
