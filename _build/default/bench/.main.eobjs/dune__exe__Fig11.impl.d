bench/fig11.ml: Datasets Exp_util Hardq List Printf Util
