bench/fig12.ml: Datasets Exp_util Hardq List Util
