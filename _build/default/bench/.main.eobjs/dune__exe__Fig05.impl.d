bench/fig05.ml: Datasets Exp_util Hardq Hashtbl List Option Printf
