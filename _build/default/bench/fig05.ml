(* Figure 5: general-solver (inclusion-exclusion + single-pattern solver)
   running time as a function of the number of patterns in a conjunction,
   over Benchmark-A.

   Paper shape: exponential growth in the conjunction size (their axis
   reaches 10^5 seconds at 3 patterns on m=15; we scale m down so the same
   exponential shape fits a laptop budget). *)

let run ~full () =
  Exp_util.header "Figure 5"
    "general solver: time vs #patterns in an inclusion-exclusion conjunction";
  Exp_util.note
    "paper: running time grows exponentially with the conjunction size";
  let m = if full then 12 else 10 in
  let n_unions = if full then 8 else 5 in
  let budget = if full then 300. else 60. in
  let insts =
    Datasets.Bench_a.generate ~m ~items_per_label:3 ~n_unions ~seed:55 ()
  in
  (* Evaluate every conjunction of every union, bucketing times by size. *)
  let buckets = Hashtbl.create 4 in
  let timeouts = Hashtbl.create 4 in
  List.iter
    (fun inst ->
      let model = Datasets.Instance.model inst in
      let lab = inst.Datasets.Instance.labeling in
      List.iter
        (fun (conj, size) ->
          let result, dt =
            Exp_util.timed_opt ~budget (fun b ->
                Hardq.Pattern_solver.prob ~budget:b model lab conj)
          in
          match result with
          | Some _ ->
              Hashtbl.replace buckets size
                (dt :: Option.value ~default:[] (Hashtbl.find_opt buckets size))
          | None ->
              Hashtbl.replace timeouts size
                (1 + Option.value ~default:0 (Hashtbl.find_opt timeouts size)))
        (Hardq.General.conjunctions inst.Datasets.Instance.union))
    insts;
  List.iter
    (fun size ->
      let times = Option.value ~default:[] (Hashtbl.find_opt buckets size) in
      let n_to = Option.value ~default:0 (Hashtbl.find_opt timeouts size) in
      Exp_util.summary_line
        (Printf.sprintf "%d pattern(s) in conjunction%s" size
           (if n_to > 0 then Printf.sprintf " (%d timeouts @%.0fs)" n_to budget
            else ""))
        times)
    [ 1; 2; 3 ]
