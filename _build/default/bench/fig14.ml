(* Figure 14: MIS-AMP-adaptive runtime over the MovieLens surrogate,
   varying the number of movies m. The genre variable is grounded, so the
   pattern union grows with the catalog (more genres).

   Paper shape: runtime grows with m (tens to hundreds of seconds at
   m = 200 on their hardware); the union size grows stepwise with the
   genre count. *)

let run ~full () =
  Exp_util.header "Figure 14" "MIS-AMP-adaptive over the MovieLens surrogate";
  Exp_util.note
    "paper: per-session time grows with m; #patterns grows with the genre count";
  let ms = if full then [ 40; 80; 120; 160; 200 ] else [ 40; 80; 120 ] in
  let n_components = if full then 8 else 4 in
  let n_per = if full then 300 else 150 in
  List.iter
    (fun m ->
      let db = Datasets.Movielens.generate ~n_movies:m ~n_components ~seed:(140 + m) () in
      let q = Ppd.Parser.parse Datasets.Movielens.query_fig14 in
      let compiled = Ppd.Compile.compile db q in
      let lab = Ppd.Database.labeling db in
      let n_patterns = ref 0 in
      let times =
        List.filter_map
          (fun { Ppd.Compile.session; union } ->
            match union with
            | None -> None
            | Some u ->
                n_patterns := Prefs.Pattern_union.size u;
                let rng = Util.Rng.make (m + 7) in
                let _, dt =
                  Util.Timer.time (fun () ->
                      Hardq.Mis_amp_adaptive.estimate ~n_per ~d_max:10
                        ~subrank_cap:300_000 session.Ppd.Database.model lab u rng)
                in
                Some dt)
          compiled.Ppd.Compile.requests
      in
      Exp_util.summary_line
        (Printf.sprintf "m=%-4d (%d patterns/union)" m !n_patterns)
        times)
    ms
