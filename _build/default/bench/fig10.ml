(* Figure 10: MIS-AMP-lite relative error vs number of proposal
   distributions on (a) Benchmark-A and (b) Benchmark-C.

   Paper shape: error decreases as d grows and plateaus around d = 20. *)

let errors_vs_d ~name ~insts ~ds ~n_per ~seed =
  (* Keep instances whose exact probability is informative: neither ~0
     (relative error unstable) nor ~1 (the [0,1] clip answers them). *)
  let informative =
    List.filter_map
      (fun inst ->
        let exact =
          Hardq.Bipartite.prob (Datasets.Instance.model inst)
            inst.Datasets.Instance.labeling inst.Datasets.Instance.union
        in
        if exact > 1e-9 && exact < 0.9 then Some (inst, exact) else None)
      insts
  in
  Exp_util.row "%s (%d informative of %d instances)" name
    (List.length informative) (List.length insts);
  List.iter
    (fun d ->
      let errs =
        List.map
          (fun (inst, exact) ->
            let lab = inst.Datasets.Instance.labeling in
            let u = inst.Datasets.Instance.union in
            let rng = Util.Rng.make (seed + d) in
            let est =
              Hardq.Mis_amp_lite.estimate ~d ~n_per inst.Datasets.Instance.mallows
                lab u rng
            in
            Exp_util.rel_err ~exact est.Hardq.Estimate.value)
          informative
      in
      Exp_util.row "  d=%-3d rel err: %s" d (Exp_util.err_summary errs))
    ds

let run ~full () =
  Exp_util.header "Figure 10"
    "MIS-AMP-lite: relative error vs #proposal distributions";
  Exp_util.note "paper: accuracy improves with d and plateaus around d = 20";
  let ds = [ 1; 2; 5; 10; 20 ] in
  let n_per = if full then 1000 else 400 in
  let insts_a =
    Datasets.Bench_a.generate ~m:15 ~n_unions:(if full then 33 else 8) ~seed:101 ()
  in
  errors_vs_d ~name:"(a) Benchmark-A" ~insts:insts_a ~ds ~n_per ~seed:10_000;
  let insts_c =
    Datasets.Bench_c.generate
      ~ms:(if full then [ 12; 14 ] else [ 10; 12 ])
      ~patterns_per_union:[ 3 ] ~labels_per_pattern:[ 3 ]
      ~items_per_label:[ 1; 3 ]
      ~instances_per_combo:(if full then 10 else 6)
      ~seed:102 ()
  in
  errors_vs_d ~name:"(b) Benchmark-C (3 patterns, 3 labels)" ~insts:insts_c ~ds
    ~n_per ~seed:20_000
