(* Figure 11: per-instance behaviour of MIS-AMP-lite on Benchmark-A:
   (a) a typical instance — error falls as d grows;
   (b) an atypical instance — compensation does the heavy lifting;
   (c) the same atypical instance with compensation off — error decreases
       with d again (the pruning, not the sampling, was the error source). *)

let err_curve inst ~compensate ~ds ~n_per ~seed =
  let model = Datasets.Instance.model inst in
  let lab = inst.Datasets.Instance.labeling in
  let u = inst.Datasets.Instance.union in
  let exact = Hardq.Bipartite.prob model lab u in
  List.map
    (fun d ->
      let rng = Util.Rng.make (seed + d) in
      let est =
        Hardq.Mis_amp_lite.estimate ~compensate ~d ~n_per
          inst.Datasets.Instance.mallows lab u rng
      in
      (d, Exp_util.rel_err ~exact est.Hardq.Estimate.value))
    ds

let print_curve name curve =
  Exp_util.row "%s" name;
  List.iter (fun (d, e) -> Exp_util.row "  d=%-3d rel err %.4g" d e) curve

let run ~full () =
  Exp_util.header "Figure 11" "MIS-AMP-lite per-instance accuracy (Benchmark-A)";
  Exp_util.note
    "paper: (a) typical - error falls with d; (b) atypical - compensation \
     dominates; (c) same instance, compensation off - error falls with d again";
  let ds = [ 1; 5; 10; 20 ] in
  let n_per = if full then 2000 else 600 in
  let insts =
    Datasets.Bench_a.generate ~m:15 ~n_unions:(if full then 33 else 12) ~seed:111 ()
  in
  (* Keep instances with non-trivial exact probability. *)
  let scored =
    List.filter_map
      (fun inst ->
        let exact =
          Hardq.Bipartite.prob (Datasets.Instance.model inst)
            inst.Datasets.Instance.labeling inst.Datasets.Instance.union
        in
        (* Keep instances whose probability is informative: far from both 0
           (relative error unstable) and 1 (everything clips to exact). *)
        if exact > 1e-7 && exact < 0.9 then Some (inst, exact) else None)
      insts
  in
  match scored with
  | [] -> Exp_util.row "(no usable instances)"
  | _ ->
      (* Typical: smallest compensation effect at d=1 (the sampler does the
         work). Atypical: the instance whose d=1 error is most *reduced* by
         compensation — there the pruned sub-rankings held the mass, which
         is the paper's Figure 11b story. *)
      let with_stats =
        List.map
          (fun (inst, _) ->
            let e_off = snd (List.hd (err_curve inst ~compensate:false ~ds:[ 1 ] ~n_per ~seed:42)) in
            let e_on = snd (List.hd (err_curve inst ~compensate:true ~ds:[ 1 ] ~n_per ~seed:42)) in
            let e_on20 = snd (List.hd (err_curve inst ~compensate:true ~ds:[ 20 ] ~n_per ~seed:42)) in
            (inst, e_off -. e_on, e_on20))
          scored
      in
      (* Typical: the estimator converges (smallest error at d=20).
         Atypical: compensation closes the biggest gap at d=1. *)
      let by_final =
        List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) with_stats
      in
      let typical = (fun (i, _, _) -> i) (List.hd by_final) in
      let by_gap =
        List.stable_sort (fun (_, a, _) (_, b, _) -> compare b a) with_stats
      in
      let atypical =
        match
          List.find_opt
            (fun (i, _, _) -> i.Datasets.Instance.name <> typical.Datasets.Instance.name)
            by_gap
        with
        | Some (i, _, _) -> i
        | None -> (fun (i, _, _) -> i) (List.hd by_gap)
      in
      print_curve
        (Printf.sprintf "(a) typical instance (%s), compensation on"
           typical.Datasets.Instance.name)
        (err_curve typical ~compensate:true ~ds ~n_per ~seed:1000);
      print_curve
        (Printf.sprintf "(b) atypical instance (%s), compensation on"
           atypical.Datasets.Instance.name)
        (err_curve atypical ~compensate:true ~ds ~n_per ~seed:2000);
      print_curve "(c) same instance, compensation off"
        (err_curve atypical ~compensate:false ~ds ~n_per ~seed:2000)
