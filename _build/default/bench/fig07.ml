(* Figure 7: bipartite-solver scalability over Benchmark-C.
   (a) time vs m for 2/3/4 labels per pattern (3 patterns/union, 3 items/label);
   (b) time vs m for 1/2/3 patterns per union (3 labels/pattern, 3 items/label).

   Paper shape: steep growth in both m and the number of labels; practical
   for low m. *)

let sweep ~name ~insts ~key ~values ~ms ~budget =
  Exp_util.row "%s" name;
  List.iter
    (fun v ->
      Exp_util.row "  %s = %d:" key v;
      List.iter
        (fun m ->
          let matching =
            List.filter
              (fun i ->
                Datasets.Instance.param i "m" = m && Datasets.Instance.param i key = v)
              insts
          in
          let times = ref [] and timeouts = ref 0 in
          List.iter
            (fun inst ->
              let r, dt =
                Exp_util.timed_opt ~budget (fun b ->
                    Hardq.Bipartite.prob ~budget:b (Datasets.Instance.model inst)
                      inst.Datasets.Instance.labeling inst.Datasets.Instance.union)
              in
              match r with Some _ -> times := dt :: !times | None -> incr timeouts)
            matching;
          Exp_util.summary_line
            (Printf.sprintf "  m=%-3d%s" m
               (if !timeouts > 0 then Printf.sprintf " (%d timeouts)" !timeouts
                else ""))
            !times)
        ms)
    values

let run ~full () =
  Exp_util.header "Figure 7" "bipartite solver scalability over Benchmark-C";
  Exp_util.note "paper: running time increases very fast with m and with q*z";
  let ms = if full then [ 10; 12; 14; 16 ] else [ 10; 12; 14 ] in
  let per_combo = if full then 5 else 3 in
  let budget = if full then 120. else 20. in
  (* (a) labels per pattern sweep, z = 3 fixed *)
  let insts_a =
    Datasets.Bench_c.generate ~ms ~patterns_per_union:[ 3 ]
      ~labels_per_pattern:(if full then [ 2; 3; 4 ] else [ 2; 3 ])
      ~items_per_label:[ 3 ] ~instances_per_combo:per_combo ~seed:77 ()
  in
  sweep ~name:"(a) 3 patterns/union, 3 items/label; varying labels/pattern"
    ~insts:insts_a ~key:"q"
    ~values:(if full then [ 2; 3; 4 ] else [ 2; 3 ])
    ~ms ~budget;
  (* (b) patterns per union sweep, q = 3 fixed *)
  let insts_b =
    Datasets.Bench_c.generate ~ms ~patterns_per_union:[ 1; 2; 3 ]
      ~labels_per_pattern:[ 3 ] ~items_per_label:[ 3 ]
      ~instances_per_combo:per_combo ~seed:78 ()
  in
  sweep ~name:"(b) 3 labels/pattern, 3 items/label; varying patterns/union"
    ~insts:insts_b ~key:"z" ~values:[ 1; 2; 3 ] ~ms ~budget
