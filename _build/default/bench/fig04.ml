(* Figure 4: exact solvers vs MIS-AMP-adaptive on the Polls two-label
   query, varying the number of candidates m.

   Paper shape: two-label < bipartite < general in running time, with the
   general solver orders of magnitude slower; MIS-AMP-adaptive is the most
   scalable and accurate on most instances. *)

let query = Datasets.Polls.query_two_label

let distinct_requests db q limit =
  let compiled = Ppd.Compile.compile db q in
  let seen = Hashtbl.create 32 in
  List.filteri
    (fun i _ -> i < limit)
    (List.filter_map
       (fun { Ppd.Compile.session; union } ->
         match union with
         | None -> None
         | Some u ->
             let key =
               ( Prefs.Ranking.to_array
                   (Rim.Mallows.center session.Ppd.Database.model),
                 Rim.Mallows.phi session.Ppd.Database.model )
             in
             if Hashtbl.mem seen key then None
             else begin
               Hashtbl.add seen key ();
               Some (session.Ppd.Database.model, u)
             end)
       compiled.Ppd.Compile.requests)

let run ~full () =
  Exp_util.header "Figure 4" "exact solvers vs MIS-AMP-adaptive over Polls";
  Exp_util.note
    "paper: two-label fastest, then bipartite, then general (x100 slower); \
     MIS-AMP-adaptive most scalable, 93%% of instances within 10%% rel. error";
  let ms = if full then [ 20; 22; 24; 26; 28; 30 ] else [ 20; 24; 28 ] in
  let budget = if full then 120. else 30. in
  let n_requests = if full then 10 else 5 in
  let errs = ref [] in
  List.iter
    (fun m ->
      let db = Datasets.Polls.generate ~n_candidates:m ~n_voters:40 ~seed:(100 + m) () in
      let q = Ppd.Parser.parse query in
      let requests = distinct_requests db q n_requests in
      let lab = Ppd.Database.labeling db in
      Exp_util.row "m = %d (%d distinct session models)" m (List.length requests);
      let run_exact name solve =
        let times = ref [] and timeouts = ref 0 in
        List.iter
          (fun (mal, u) ->
            let model = Rim.Mallows.to_rim mal in
            let result, dt =
              Exp_util.timed_opt ~budget (fun b -> solve b model lab u)
            in
            match result with
            | Some _ -> times := dt :: !times
            | None -> incr timeouts)
          requests;
        Exp_util.summary_line
          (Printf.sprintf "%s%s" name
             (if !timeouts > 0 then Printf.sprintf " (%d timeouts)" !timeouts else ""))
          !times
      in
      run_exact "two-label" (fun b model lab u -> Hardq.Two_label.prob ~budget:b model lab u);
      run_exact "bipartite" (fun b model lab u -> Hardq.Bipartite.prob ~budget:b model lab u);
      run_exact "general" (fun b model lab u -> Hardq.General.prob ~budget:b model lab u);
      (* MIS-AMP-adaptive, with accuracy vs the two-label exact value. The
         Polls union has many overlapping sub-rankings, so d must be allowed
         to grow until the proposal pool is exhausted (compensation assumes
         near-disjointness and overestimates otherwise). *)
      let rng = Util.Rng.make (1000 + m) in
      let times = ref [] in
      List.iter
        (fun (mal, u) ->
          let exact = Hardq.Two_label.prob (Rim.Mallows.to_rim mal) lab u in
          let res, dt =
            Util.Timer.time (fun () ->
                Hardq.Mis_amp_adaptive.estimate
                  ~n_per:(if full then 300 else 100)
                  ~delta_d:10 ~tol:0.02
                  ~d_max:(if full then 150 else 100)
                  mal lab u rng)
          in
          times := dt :: !times;
          if exact > 1e-12 then
            errs :=
              Exp_util.rel_err ~exact
                res.Hardq.Mis_amp_adaptive.estimate.Hardq.Estimate.value
              :: !errs)
        requests;
      Exp_util.summary_line "MIS-AMP-adaptive" !times)
    ms;
  let errs = !errs in
  let within t = List.length (List.filter (fun e -> e <= t) errs) in
  if errs <> [] then
    Exp_util.row
      "MIS-AMP-adaptive accuracy: %d/%d within 1%%, %d/%d within 10%% (max %.3g)"
      (within 0.01) (List.length errs) (within 0.1) (List.length errs)
      (Util.Stats.maximum (Array.of_list errs))
