(* Figure 15: scalability in the number of sessions over the CrowdRank
   surrogate — naive per-session evaluation vs grouping identical
   (model, pattern-union) requests.

   Paper shape: the naive curve is linear in the session count; grouping
   converges once every distinct request has been seen (their 200k
   sessions finish in ~118s). *)

let run ~full () =
  Exp_util.header "Figure 15" "session scalability over CrowdRank (grouping)";
  Exp_util.note
    "paper: naive evaluation is linear in #sessions; grouping flattens out";
  let q = Ppd.Parser.parse Datasets.Crowdrank.query_fig15 in
  let solver =
    Hardq.Solver.Approx
      (Hardq.Solver.Mis_lite
         { d = 3; n_per = (if full then 300 else 150); compensate = true })
  in
  let counts =
    if full then
      [ (100, true); (1_000, true); (10_000, true); (50_000, false); (200_000, false) ]
    else [ (100, true); (1_000, true); (10_000, false) ]
  in
  List.iter
    (fun (n, naive_too) ->
      let db = Datasets.Crowdrank.generate ~n_workers:n ~seed:151 () in
      let rng = Util.Rng.make 9 in
      let _, t_grouped =
        Util.Timer.time (fun () ->
            Ppd.Eval.count_sessions ~solver ~group:true db q (Util.Rng.copy rng))
      in
      if naive_too then begin
        let _, t_naive =
          Util.Timer.time (fun () ->
              Ppd.Eval.count_sessions ~solver ~group:false db q (Util.Rng.copy rng))
        in
        Exp_util.row "%7d sessions: naive %9.2fs   grouped %8.2fs" n t_naive
          t_grouped
      end
      else
        Exp_util.row "%7d sessions: naive   (skipped)   grouped %8.2fs" n t_grouped)
    counts
