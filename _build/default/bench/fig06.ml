(* Figure 6: proportion of Benchmark-D instances the two-label solver
   finishes within a timeout, over a grid of m (items) x z (patterns per
   union).

   Paper shape: 100% for small m/z, decaying towards the bottom-right
   corner (m = 60, z = 5 -> 3% within 10 minutes). We shrink the timeout
   so the same cliff appears at laptop scale. *)

let run ~full () =
  Exp_util.header "Figure 6"
    "two-label solver: %% of Benchmark-D instances finished within the timeout";
  Exp_util.note
    "paper: completion rate decays with both m and #patterns (100%% -> 3%%)";
  let ms = if full then [ 20; 30; 40; 50; 60 ] else [ 20; 30; 40 ] in
  let zs = if full then [ 2; 3; 4; 5 ] else [ 2; 3; 4 ] in
  let per_combo = if full then 10 else 4 in
  let timeout = if full then 10. else 1.5 in
  let insts =
    Datasets.Bench_d.generate ~ms ~patterns_per_union:zs ~items_per_label:[ 3 ]
      ~instances_per_combo:per_combo ~seed:66 ()
  in
  Printf.printf "  timeout per instance: %.1fs\n" timeout;
  Printf.printf "  %-6s" "z\\m";
  List.iter (fun m -> Printf.printf "%8d" m) ms;
  print_newline ();
  List.iter
    (fun z ->
      Printf.printf "  %-6d" z;
      List.iter
        (fun m ->
          let matching =
            List.filter
              (fun i ->
                Datasets.Instance.param i "m" = m && Datasets.Instance.param i "z" = z)
              insts
          in
          let finished =
            List.length
              (List.filter
                 (fun inst ->
                   let r, _ =
                     Exp_util.timed_opt ~budget:timeout (fun b ->
                         Hardq.Two_label.prob ~budget:b
                           (Datasets.Instance.model inst)
                           inst.Datasets.Instance.labeling
                           inst.Datasets.Instance.union)
                   in
                   Option.is_some r)
                 matching)
          in
          Printf.printf "%7.0f%%"
            (100. *. float_of_int finished /. float_of_int (List.length matching)))
        ms;
      print_newline ())
    zs
