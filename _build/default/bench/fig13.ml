(* Figure 13: MIS-AMP-adaptive over Benchmark-B.
   (a) proposal-construction overhead vs labels per pattern and items per
       label (m = 100, 3 patterns/union);
   (b) sampling (convergence) time vs m for 3/4/5 labels per pattern
       (2 patterns/union, 5 items/label).

   Paper shape: overhead rises sharply with #labels (especially with many
   items per label); once proposals exist, sampling time grows only
   moderately with m and barely with the query size. *)

let run ~full () =
  Exp_util.header "Figure 13" "MIS-AMP-adaptive over Benchmark-B";
  Exp_util.note
    "paper: construction overhead explodes with #labels; sampling time \
     grows moderately with m";
  (* (a) overhead. *)
  let m_a = if full then 100 else 50 in
  let qs = if full then [ 3; 4; 5 ] else [ 3; 4 ] in
  let ipls = if full then [ 3; 5; 7 ] else [ 3; 5 ] in
  let per_combo = if full then 3 else 2 in
  Exp_util.row "(a) proposal-construction overhead, m=%d, 3 patterns/union" m_a;
  List.iter
    (fun q ->
      List.iter
        (fun ipl ->
          let insts =
            Datasets.Bench_b.generate ~ms:[ m_a ] ~patterns_per_union:[ 3 ]
              ~labels_per_pattern:[ q ] ~items_per_label:[ ipl ]
              ~instances_per_combo:per_combo ~seed:(131 + q + ipl) ()
          in
          let overheads = ref [] and capped = ref 0 in
          List.iter
            (fun inst ->
              match
                Hardq.Mis_amp_lite.prepare ~subrank_cap:300_000
                  inst.Datasets.Instance.mallows inst.Datasets.Instance.labeling
                  inst.Datasets.Instance.union
              with
              | plan ->
                  (* include the modal search for the first 10 proposals *)
                  let rng = Util.Rng.make 3 in
                  let _ =
                    Hardq.Mis_amp_lite.estimate_with_plan plan ~d:10 ~n_per:1 rng
                  in
                  overheads := Hardq.Mis_amp_lite.plan_overhead plan :: !overheads
              | exception Prefs.Decompose.Too_many _ -> incr capped)
            insts;
          Exp_util.summary_line
            (Printf.sprintf "q=%d items/label=%d%s" q ipl
               (if !capped > 0 then
                  Printf.sprintf " (%d hit the 300k sub-ranking cap)" !capped
                else ""))
            !overheads)
        ipls)
    qs;
  (* (b) sampling/convergence time. *)
  let ms_b = if full then [ 20; 50; 100; 200 ] else [ 20; 50; 100 ] in
  Exp_util.row "(b) sampling time to convergence, 2 patterns/union, 5 items/label";
  List.iter
    (fun q ->
      List.iter
        (fun m ->
          let insts =
            Datasets.Bench_b.generate ~ms:[ m ] ~patterns_per_union:[ 2 ]
              ~labels_per_pattern:[ q ] ~items_per_label:[ 5 ]
              ~instances_per_combo:1 ~seed:(141 + q + m) ()
          in
          let times =
            List.filter_map
              (fun inst ->
                match
                  Hardq.Mis_amp_lite.prepare ~subrank_cap:300_000
                    inst.Datasets.Instance.mallows inst.Datasets.Instance.labeling
                    inst.Datasets.Instance.union
                with
                | plan ->
                    let rng = Util.Rng.make 5 in
                    let res =
                      Hardq.Mis_amp_adaptive.estimate_with_plan
                        ~n_per:(if full then 500 else 200)
                        ~d_max:20 plan rng
                    in
                    Some res.Hardq.Mis_amp_adaptive.estimate.Hardq.Estimate.sampling_time
                | exception Prefs.Decompose.Too_many _ -> None)
              insts
          in
          Exp_util.summary_line (Printf.sprintf "q=%d m=%-4d" q m) times)
        ms_b)
    (if full then [ 3; 4; 5 ] else [ 3; 4 ])
