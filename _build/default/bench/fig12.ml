(* Figure 12: the compensation mechanism of MIS-AMP-lite on Benchmark-C
   with a single proposal distribution: relative error with vs without
   compensation, per instance.

   Paper shape: a scatter mostly below the diagonal — most instances
   improve, dramatically so for instances whose uncompensated error is
   close to 100% (the pruned sub-rankings held most of the mass). *)

let run ~full () =
  Exp_util.header "Figure 12"
    "MIS-AMP-lite compensation: error with vs without (d = 1, Benchmark-C)";
  Exp_util.note
    "paper: most points fall below the diagonal; near-100%% errors collapse";
  (* The paper runs this over the whole of Benchmark-C. The mix matters:
     with 1 item per label the sub-rankings are (near-)disjoint and
     compensation is the right model; with 3-5 items per label they overlap
     and compensation can overshoot — the paper's scatter has points on
     both sides of the diagonal. *)
  let insts =
    Datasets.Bench_c.generate
      ~ms:(if full then [ 10; 12; 14; 16 ] else [ 10 ])
      ~patterns_per_union:[ 1; 2; 3 ] ~labels_per_pattern:[ 2; 3; 4 ]
      ~items_per_label:[ 1; 3; 5 ]
      ~instances_per_combo:(if full then 4 else 1)
      ~seed:121 ()
  in
  let n_per = if full then 2000 else 600 in
  let improved = ref 0 and total = ref 0 in
  Exp_util.row "%-28s %12s %12s" "instance" "err w/o comp" "err w/ comp";
  List.iter
    (fun inst ->
      let model = Datasets.Instance.model inst in
      let lab = inst.Datasets.Instance.labeling in
      let u = inst.Datasets.Instance.union in
      let exact = Hardq.Bipartite.prob model lab u in
      if exact > 1e-9 then begin
        let est c seed =
          (Hardq.Mis_amp_lite.estimate ~compensate:c ~d:1 ~n_per
             inst.Datasets.Instance.mallows lab u (Util.Rng.make seed))
            .Hardq.Estimate.value
        in
        let e_off = Exp_util.rel_err ~exact (est false 7) in
        let e_on = Exp_util.rel_err ~exact (est true 7) in
        incr total;
        if e_on < e_off then incr improved;
        Exp_util.row "%-28s %12.4g %12.4g%s" inst.Datasets.Instance.name e_off e_on
          (if e_on < e_off then "  (improved)" else "")
      end)
    insts;
  if !total > 0 then
    Exp_util.row "improved by compensation: %d / %d (%.0f%%)" !improved !total
      (100. *. float_of_int !improved /. float_of_int !total)
