(* hardq-qa — differential testing toolbox: deterministic fuzzing,
   corpus replay, case generation, and registry export. Exit 0 when all
   checks pass, 1 when any case fails, 2 on usage errors. *)

open Cmdliner

let seed_arg =
  let doc = "Root seed; case $(i,i) is a pure function of (seed, i)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let max_items_arg =
  let doc = "Largest item domain the generator draws." in
  Arg.(value & opt int Qa.Gen.default.Qa.Gen.max_items
       & info [ "max-items" ] ~docv:"M" ~doc)

let max_sessions_arg =
  let doc = "Largest session count the generator draws." in
  Arg.(value & opt int Qa.Gen.default.Qa.Gen.max_sessions
       & info [ "max-sessions" ] ~docv:"N" ~doc)

let params max_items max_sessions =
  { Qa.Gen.default with Qa.Gen.max_items; max_sessions }

(* fuzz *)

let seconds_arg =
  let doc = "Wall-clock time box in seconds (0 = no limit)." in
  Arg.(value & opt float 30. & info [ "seconds" ] ~docv:"S" ~doc)

let iters_arg =
  let doc = "Maximum cases to try (0 = no limit)." in
  Arg.(value & opt int 0 & info [ "iters" ] ~docv:"N" ~doc)

let corpus_arg =
  let doc =
    "Corpus directory where shrunk failures are appended; $(b,none) \
     disables persistence."
  in
  Arg.(value & opt string Qa.Corpus.default_dir
       & info [ "corpus" ] ~docv:"DIR" ~doc)

let fuzz seed seconds iters corpus max_items max_sessions =
  let corpus_dir = if corpus = "none" then None else Some corpus in
  let cfg =
    {
      Qa.Fuzz.default with
      Qa.Fuzz.seed;
      seconds;
      iters;
      corpus_dir;
      params = params max_items max_sessions;
    }
  in
  let o = Qa.Fuzz.run cfg in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let fuzz_cmd =
  let doc = "generate random cases and differentially check every solver" in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ seed_arg $ seconds_arg $ iters_arg $ corpus_arg
      $ max_items_arg $ max_sessions_arg)

(* replay *)

let path_arg =
  let doc = "A $(b,.case) file, or a directory of them." in
  Arg.(value & pos 0 string Qa.Corpus.default_dir & info [] ~docv:"PATH" ~doc)

let replay path =
  let o = Qa.Fuzz.replay path in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let replay_cmd =
  let doc = "re-check recorded cases; print each answer bit-exactly" in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const replay $ path_arg)

(* kernel-diff *)

let kernel_diff path =
  let o = Qa.Fuzz.kernel_diff path in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let kernel_diff_cmd =
  let doc =
    "sweep recorded cases through every applicable exact solver under \
     both DP kernels (flat and boxed) and fail unless the answers are \
     byte-identical"
  in
  Cmd.v (Cmd.info "kernel-diff" ~doc) Term.(const kernel_diff $ path_arg)

(* lang-diff *)

let lang_diff path =
  let o = Qa.Fuzz.lang_diff path in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let lang_diff_cmd =
  let doc =
    "replay recorded cases through the query-language frontend and the \
     tractability planner and fail unless every compiled-plan answer is \
     bit-identical to the direct solver path — and unless the corpus \
     routes at least one query to every plan node kind"
  in
  Cmd.v (Cmd.info "lang-diff" ~doc) Term.(const lang_diff $ path_arg)

(* anytime-diff *)

let anytime_diff path =
  let o = Qa.Fuzz.anytime_diff path in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let anytime_diff_cmd =
  let doc =
    "serve recorded cases under accuracy SLOs and fail unless every \
     streamed confidence interval contains the exact answer, widths \
     only tighten, and frame sequences are byte-identical across pool \
     widths (with looser targets a prefix of tighter ones)"
  in
  Cmd.v (Cmd.info "anytime-diff" ~doc) Term.(const anytime_diff $ path_arg)

(* shard-diff *)

let shard_diff path =
  let o = Qa.Fuzz.shard_diff path in
  if o.Qa.Fuzz.failures = 0 then 0 else 1

let shard_diff_cmd =
  let doc =
    "replay recorded cases through sharded engines (shard counts 1, 2 \
     and 4) and fail unless every Boolean, Count-Session and top-k \
     answer is byte-identical to the sequential reference — and unless \
     the two-phase top-k pruned exactly the shards whose upper bounds \
     fell below the k-th answer"
  in
  Cmd.v (Cmd.info "shard-diff" ~doc) Term.(const shard_diff $ path_arg)

(* gen *)

let index_arg =
  let doc = "Case index within the seed's stream." in
  Arg.(value & opt int 0 & info [ "index"; "i" ] ~docv:"I" ~doc)

let out_arg =
  let doc = "Output file ($(b,-) = stdout)." in
  Arg.(value & opt string "-" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let write_case out case =
  if out = "-" then print_string (Ppd.Case.to_string case)
  else Ppd.Case.save out case

let lang_arg =
  let doc =
    "Emit the case's query as query-language text (one line) instead of \
     the full case file — the corpus seam for external parser fuzzers."
  in
  Arg.(value & flag & info [ "lang" ] ~doc)

let gen seed index out max_items max_sessions lang =
  let case =
    Qa.Gen.case
      ~params:(params max_items max_sessions)
      (Util.Rng.derive seed index)
  in
  if lang then begin
    let text =
      Lang.Ast.to_string (Lang.Ast.of_query case.Ppd.Case.query) ^ "\n"
    in
    if out = "-" then print_string text
    else Out_channel.with_open_text out (fun oc -> Out_channel.output_string oc text)
  end
  else write_case out case;
  0

let gen_cmd =
  let doc = "print the case at (seed, index) of the generator stream" in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(
      const gen $ seed_arg $ index_arg $ out_arg $ max_items_arg
      $ max_sessions_arg $ lang_arg)

(* export *)

let dataset_arg =
  let doc = "Dataset family: $(b,polls), $(b,movielens) or $(b,crowdrank)." in
  Arg.(value & opt string "polls" & info [ "dataset" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "Dataset scale (generator default when omitted)." in
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N" ~doc)

let sessions_arg =
  let doc = "Session count (generator default when omitted)." in
  Arg.(value & opt (some int) None & info [ "sessions" ] ~docv:"N" ~doc)

let ds_seed_arg =
  let doc = "Dataset generator seed." in
  Arg.(value & opt (some int) None & info [ "dataset-seed" ] ~docv:"SEED" ~doc)

let query_arg =
  let doc =
    "Query text (parser syntax); the dataset's showcase query when omitted."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let fail fmt =
  Printf.ksprintf (fun msg -> Printf.eprintf "hardq-qa: %s\n" msg; 2) fmt

let export dataset size sessions ds_seed query out =
  let query_text =
    match query with
    | Some q -> Some q
    | None -> Server.Registry.showcase_query dataset
  in
  match query_text with
  | None -> fail "no query given and %S has no showcase query" dataset
  | Some text -> (
      match Ppd.Parser.parse_result text with
      | Error msg -> fail "query: %s" msg
      | Ok q -> (
          let spec =
            {
              Server.Protocol.ds_name = dataset;
              ds_size = size;
              ds_sessions = sessions;
              ds_seed = ds_seed;
            }
          in
          match Server.Registry.find (Server.Registry.create ()) spec with
          | Error e -> fail "%s" e.Server.Protocol.message
          | Ok db ->
              write_case out (Ppd.Case.make ~db ~query:q ());
              0))

let export_cmd =
  let doc =
    "write a registry dataset plus query as a case file, so a served \
     answer can be replayed offline"
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const export $ dataset_arg $ size_arg $ sessions_arg $ ds_seed_arg
      $ query_arg $ out_arg)

let cmd =
  let doc = "differential testing and deterministic replay for hardq" in
  Cmd.group
    (Cmd.info "hardq-qa" ~doc)
    [
      fuzz_cmd;
      replay_cmd;
      kernel_diff_cmd;
      lang_diff_cmd;
      anytime_diff_cmd;
      shard_diff_cmd;
      gen_cmd;
      export_cmd;
    ]

let () = exit (Cmd.eval' cmd)
