(* hardq — command-line front end: evaluate hard CQs over the bundled
   synthetic RIM-PPDs, run Count-Session / Most-Probable-Session, and
   sample from Mallows models. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  let doc = "Random seed (controls both data generation and sampling)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let dataset_arg =
  let doc =
    "Dataset to generate: $(b,polls) (election polls, Figure 1), \
     $(b,movielens) (movie catalog surrogate) or $(b,crowdrank) (crowd-worker \
     surrogate)."
  in
  Arg.(
    value
    & opt (enum [ ("polls", `Polls); ("movielens", `Movielens); ("crowdrank", `Crowdrank) ]) `Polls
    & info [ "dataset" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "Scale of the generated dataset (candidates/movies and sessions)." in
  Arg.(value & opt int 12 & info [ "size" ] ~docv:"N" ~doc)

let sessions_arg =
  let doc = "Number of sessions (voters/workers) to generate." in
  Arg.(value & opt int 100 & info [ "sessions" ] ~docv:"N" ~doc)

let solver_conv =
  let parse s =
    match Hardq.Solver.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Format.pp_print_string ppf (Hardq.Solver.to_string t) in
  Arg.conv (parse, print)

let solver_arg =
  let doc =
    "Solver: $(b,auto), $(b,two-label), $(b,bipartite), $(b,bipartite-basic), \
     $(b,general), $(b,brute), $(b,rejection), $(b,mis-amp-lite), \
     $(b,mis-amp-adaptive), $(b,mis-amp)."
  in
  Arg.(
    value
    & opt solver_conv (Hardq.Solver.Exact `Auto)
    & info [ "solver" ] ~docv:"SOLVER" ~doc)

let jobs_arg =
  let doc =
    "Domains to evaluate with (0 = one per available core). Results are \
     bit-identical whatever the setting."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Memoize per-session inference results (the paper's grouping \
             optimization, persistent across queries of one run)." in
  Arg.(value & opt bool true & info [ "cache" ] ~docv:"BOOL" ~doc)

let intra_arg =
  let doc =
    "Let each solver call fan its own work (inclusion-exclusion terms, DP \
     layers, enumeration chunks) across the --jobs pool, in addition to the \
     across-sessions fan-out. Results are bit-identical either way."
  in
  Arg.(value & opt bool true & info [ "intra" ] ~docv:"BOOL" ~doc)

let parallelism_of intra = if intra then `Intra else `Inter

let kernel_conv =
  let parse s =
    match Hardq.Kernel.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Format.pp_print_string ppf (Hardq.Kernel.to_string t) in
  Arg.conv (parse, print)

let kernel_arg =
  let doc =
    "DP kernel of the exact solvers: $(b,flat) (arena-indexed, GC-free \
     inner loops; the default) or $(b,boxed) (the reference layout). \
     Answers are byte-identical either way."
  in
  Arg.(
    value
    & opt kernel_conv Hardq.Kernel.default
    & info [ "kernel" ] ~docv:"KERNEL" ~doc)

let budget_arg =
  let doc = "CPU-seconds budget per solver invocation (0 = unlimited)." in
  Arg.(value & opt float 0. & info [ "budget" ] ~docv:"SECONDS" ~doc)

let shards_arg =
  let doc =
    "Session-store shard count (1 = unsharded). With more shards the \
     engine scatters the query to in-process worker shards and gathers \
     partial answers (two-phase bound pruning for topk). Answers are \
     bit-identical at any shard count."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ] ~doc:"Print the engine's execution-statistics footer.")

let metrics_json_arg =
  let doc =
    "Enable observability counters and write the run's metrics snapshot \
     (one JSON object: per-solver DP states, prune counts, sampler draws, \
     engine cache activity) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"PATH" ~doc)

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record engine spans (compile/group/solve/bounds/aggregate) and \
           print the span tree to stderr.")

(* Run [f] with observability configured by the flags, then emit the
   snapshot / trace — also on failure exits, so a budget-exhausted run
   still reports how far it got. *)
let with_obs metrics_json trace f =
  if Option.is_some metrics_json then Obs.enable ();
  if trace then Obs.enable_tracing ();
  let code = f () in
  (match metrics_json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Obs.json_of_snapshot
           ~extra:[ ("schema", "\"hardq-metrics/1\"") ]
           (Obs.snapshot ()));
      output_char oc '\n';
      close_out oc);
  if trace then Format.eprintf "%a" Obs.pp_trace ();
  code

(* [--jobs 0] = engine default (one domain per core) = Config.default. *)
let engine_config ?(shards = 1) jobs cache kernel =
  let cfg = Engine.Config.(default |> with_cache cache |> with_kernel kernel) in
  let cfg =
    if shards > 1 then Engine.Config.with_shards shards cfg else cfg
  in
  if jobs <= 0 then cfg else Engine.Config.with_jobs jobs cfg

let print_stats show (resp : Engine.Response.t) =
  if show then Format.printf "%a@." Engine.Response.pp_stats resp.Engine.Response.stats

let query_arg =
  let doc =
    "The conjunctive query, e.g. 'Q() :- P(_, _; x; y), C(x, \"D\", _, _, e, \
     _), C(y, \"R\", _, _, e, _).'. Defaults to the dataset's showcase query."
  in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~docv:"CQ" ~doc)

let make_db dataset size sessions seed =
  match dataset with
  | `Polls ->
      ( Datasets.Polls.generate ~n_candidates:size ~n_voters:sessions ~seed (),
        Datasets.Polls.query_two_label )
  | `Movielens ->
      ( Datasets.Movielens.generate ~n_movies:(max size 20)
          ~n_components:(min sessions 16) ~seed (),
        Datasets.Movielens.query_fig14 )
  | `Crowdrank ->
      ( Datasets.Crowdrank.generate ~n_workers:sessions ~seed (),
        Datasets.Crowdrank.query_fig15 )

let with_query dataset size sessions seed query f =
  let db, default_q = make_db dataset size sessions seed in
  let qtext = Option.value ~default:default_q query in
  match Ppd.Parser.parse_result qtext with
  | Error msg ->
      Format.eprintf "parse error: %s@." msg;
      1
  | Ok q -> (
      match f db q with
      | () -> 0
      | exception Ppd.Compile.Unsupported msg ->
          Format.eprintf "unsupported query: %s@." msg;
          1
      | exception Util.Timer.Out_of_time ->
          Format.eprintf
            "budget exhausted: a solver invocation ran out of its --budget \
             allowance; raise it or pick a cheaper solver@.";
          1)

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let eval_cmd =
  let run dataset size sessions seed query solver jobs cache intra kernel
      budget shards stats verbose metrics_json trace =
    with_obs metrics_json trace @@ fun () ->
    with_query dataset size sessions seed query (fun db q ->
        Format.printf "query: %a@." Ppd.Query.pp q;
        Format.printf "V+ = {%s}, itemwise: %b@."
          (String.concat ", " (Ppd.Compile.v_plus db q))
          (Ppd.Compile.is_itemwise db q);
        Engine.with_engine (engine_config ~shards jobs cache kernel)
          (fun engine ->
            let req =
              Engine.Request.make ~solver ~budget ~seed
                ~parallelism:(parallelism_of intra) db q
            in
            let resp = Engine.eval engine req in
            let probs = resp.Engine.Response.per_session in
            if verbose then
              List.iter
                (fun ((s : Ppd.Database.session), p) ->
                  Format.printf "  %-18s %.6f@."
                    (String.concat "/"
                       (Array.to_list
                          (Array.map Ppd.Value.to_string s.Ppd.Database.key)))
                    p)
                probs;
            let count = List.fold_left (fun acc (_, p) -> acc +. p) 0. probs in
            Format.printf "Pr(Q | D)    = %.6f@."
              (Engine.Response.answer_float resp);
            Format.printf "E[count(Q)]  = %.4f over %d sessions@." count
              (List.length probs);
            print_stats stats resp))
  in
  let verbose =
    Arg.(value & flag & info [ "per-session"; "v" ] ~doc:"Print per-session probabilities.")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a Boolean CQ and its Count-Session aggregate")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ jobs_arg $ cache_arg $ intra_arg $ kernel_arg $ budget_arg
      $ shards_arg $ stats_arg $ verbose $ metrics_json_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* topk                                                                *)
(* ------------------------------------------------------------------ *)

let topk_cmd =
  let run dataset size sessions seed query solver jobs cache intra kernel
      budget shards stats k strategy metrics_json trace =
    with_obs metrics_json trace @@ fun () ->
    with_query dataset size sessions seed query (fun db q ->
        Engine.with_engine (engine_config ~shards jobs cache kernel)
          (fun engine ->
            let req =
              Engine.Request.make
                ~task:(Engine.Request.top_k ~strategy k)
                ~solver ~budget ~seed ~parallelism:(parallelism_of intra) db q
            in
            let resp = Engine.eval engine req in
            Format.printf
              "top-%d sessions (%d solver calls, bounds %.3fs, solve %.3fs):@." k
              resp.Engine.Response.stats.Engine.Response.solver_calls
              resp.Engine.Response.stats.Engine.Response.bound_s
              resp.Engine.Response.stats.Engine.Response.solve_s;
            List.iter
              (fun ((s : Ppd.Database.session), p) ->
                Format.printf "  %-18s %.6f@."
                  (String.concat "/"
                     (Array.to_list
                        (Array.map Ppd.Value.to_string s.Ppd.Database.key)))
                  p)
              (Engine.Response.ranked resp);
            print_stats stats resp))
  in
  let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"How many sessions.") in
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("naive", `Naive); ("1-edge", `Edges 1); ("2-edge", `Edges 2) ]) (`Edges 1)
      & info [ "strategy" ] ~docv:"S" ~doc:"naive, 1-edge or 2-edge.")
  in
  Cmd.v
    (Cmd.info "topk" ~doc:"Most-Probable-Session query")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ jobs_arg $ cache_arg $ intra_arg $ kernel_arg $ budget_arg
      $ shards_arg $ stats_arg $ k_arg $ strategy_arg $ metrics_json_arg
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* answers                                                             *)
(* ------------------------------------------------------------------ *)

let answers_cmd =
  let run dataset size sessions seed query solver k =
    with_query dataset size sessions seed query (fun db q ->
        match Ppd.Answers.top ~solver ~k db q (Util.Rng.make seed) with
        | answers ->
            Format.printf "query: %a@." Ppd.Query.pp q;
            List.iter
              (fun (a : Ppd.Answers.answer) ->
                Format.printf "  (%s)  confidence %.6f@."
                  (String.concat ", "
                     (List.map Ppd.Value.to_string a.Ppd.Answers.values))
                  a.Ppd.Answers.confidence)
              answers
        | exception Ppd.Answers.Unsupported msg ->
            Format.eprintf "unsupported: %s@." msg)
  in
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Show the K most probable answers.")
  in
  Cmd.v
    (Cmd.info "answers"
       ~doc:"Evaluate a CQ with head variables: answer tuples with confidences")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ query_arg
      $ solver_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* query — the declarative language frontend                           *)
(* ------------------------------------------------------------------ *)

let query_cmd =
  let run dataset size sessions seed text solver jobs cache intra kernel budget
      stats explain verbose target_ci deadline_ms stream metrics_json trace =
    with_obs metrics_json trace @@ fun () ->
    let slo =
      match (target_ci, deadline_ms) with
      | Some _, Some _ -> Error "--target-ci and --deadline are mutually exclusive"
      | Some w, None when w <= 0. -> Error "--target-ci must be positive"
      | Some w, None -> Ok (Some (`Ci_width w))
      | None, Some ms when ms <= 0. -> Error "--deadline must be positive"
      | None, Some ms -> Ok (Some (`Deadline (ms /. 1000.)))
      | None, None -> Ok None
    in
    match slo with
    | Error msg ->
        Format.eprintf "%s@." msg;
        1
    | Ok slo -> (
    let db, default_q = make_db dataset size sessions seed in
    let text = Option.value ~default:default_q text in
    match Lang.Parser.parse text with
    | Error e ->
        Format.eprintf "parse error: %s@." (Lang.Ast.error_to_string e);
        1
    | Ok ast -> (
        let hint =
          if solver = Hardq.Solver.Exact `Auto then None else Some solver
        in
        match Plan.compile ?hint db ast with
        | exception Ppd.Compile.Unsupported msg ->
            Format.eprintf "unsupported query: %s@." msg;
            1
        | exception Ppd.Compile.Grounding_too_large msg ->
            Format.eprintf "grounding too large: %s@." msg;
            1
        | plan ->
            if explain then begin
              Format.printf "%s@." (Plan.explain plan);
              0
            end
            else
              Engine.with_engine (engine_config jobs cache kernel) (fun engine ->
                  let req =
                    Engine.Request.of_plan ~budget ~seed
                      ~parallelism:(parallelism_of intra) ?slo plan
                  in
                  (* [serve] without an SLO is exactly [eval]; with one, the
                     cost model may route onto the anytime sampler, whose
                     rounds surface here as --stream frames. *)
                  let on_frame (f : Hardq.Anytime.frame) =
                    if stream then
                      Format.printf
                        "frame %2d  draws %6d  estimate %.6f  ci [%.6f, %.6f]@."
                        f.Hardq.Anytime.round f.Hardq.Anytime.draws
                        f.Hardq.Anytime.estimate f.Hardq.Anytime.ci_lo
                        f.Hardq.Anytime.ci_hi
                  in
                  match Engine.serve engine ~on_frame req with
                  | exception Util.Timer.Out_of_time ->
                      Format.eprintf
                        "budget exhausted: a solver invocation ran out of its \
                         --budget allowance; raise it or pick a cheaper solver@.";
                      1
                  | { Engine.response = resp; anytime } ->
                      if verbose then
                        List.iter
                          (fun ((s : Ppd.Database.session), p) ->
                            Format.printf "  %-18s %.6f@."
                              (String.concat "/"
                                 (Array.to_list
                                    (Array.map Ppd.Value.to_string
                                       s.Ppd.Database.key)))
                              p)
                          resp.Engine.Response.per_session;
                      (match resp.Engine.Response.answer with
                      | Engine.Response.Probability p ->
                          Format.printf "Pr(Q | D)    = %.6f@." p
                      | Engine.Response.Expectation v ->
                          Format.printf "E[%s]  = %.6f@."
                            (match plan.Plan.task with
                            | Lang.Ast.Count -> "count(Q)"
                            | _ -> "aggregate")
                            v
                      | Engine.Response.Ranked ranked ->
                          List.iteri
                            (fun i ((s : Ppd.Database.session), p) ->
                              Format.printf "%2d. %-18s %.6f@." (i + 1)
                                (String.concat "/"
                                   (Array.to_list
                                      (Array.map Ppd.Value.to_string
                                         s.Ppd.Database.key)))
                                p)
                            ranked);
                      Format.printf "verdict: %s (%s)@."
                        (Plan.verdict_string plan.Plan.verdict)
                        (Plan.leaf_name plan.Plan.leaf);
                      (match anytime with
                      | None -> ()
                      | Some a ->
                          Format.printf
                            "anytime: %s after %d round(s), %d draw(s), ci \
                             [%.6f, %.6f] (width %.6f)@."
                            (match a.Engine.status with
                            | `Final -> "final"
                            | `Timeout -> "timeout"
                            | `Cancelled -> "cancelled")
                            a.Engine.rounds a.Engine.draws a.Engine.ci_lo
                            a.Engine.ci_hi
                            (a.Engine.ci_hi -. a.Engine.ci_lo));
                      print_stats stats resp;
                      0)))
  in
  let text_arg =
    let doc =
      "Query text, e.g. 'count possibly Q() :- prefers(\"A\", \"B\") or \
       rank(\"C\") <= 2.'. The datalog fragment is a sub-language, so any \
       --query accepted by $(b,hardq eval) works here too. Defaults to the \
       dataset's showcase query."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the compiled plan, its tractability verdict and the \
             reasoning instead of evaluating.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "per-session"; "v" ] ~doc:"Print per-session probabilities.")
  in
  let target_ci_arg =
    let doc =
      "Accuracy SLO: keep sampling until the answer's confidence interval is \
       at most $(docv) wide. Hard-verdict queries stream anytime estimates; \
       tractable ones are still answered exactly. Mutually exclusive with \
       $(b,--deadline)."
    in
    Arg.(value & opt (some float) None & info [ "target-ci" ] ~docv:"W" ~doc)
  in
  let deadline_ms_arg =
    let doc =
      "Accuracy SLO: return the best estimate (and its confidence interval) \
       reachable within $(docv) milliseconds — expiry is a typed timeout \
       status with an answer, not an error. Mutually exclusive with \
       $(b,--target-ci)."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"MS" ~doc)
  in
  let stream_arg =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Print each anytime sampling round as a progress frame (round, \
             draws, estimate, confidence interval) as it tightens.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a declarative query (preference sugar, rank atoms, \
          disjunction, aggregates, modals) through the tractability-aware \
          planner")
    Term.(
      const run $ dataset_arg $ size_arg $ sessions_arg $ seed_arg $ text_arg
      $ solver_arg $ jobs_arg $ cache_arg $ intra_arg $ kernel_arg $ budget_arg
      $ stats_arg $ explain_arg $ verbose $ target_ci_arg $ deadline_ms_arg
      $ stream_arg $ metrics_json_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let run m phi n seed =
    let rng = Util.Rng.make seed in
    let mal = Rim.Mallows.make ~center:(Prefs.Ranking.identity m) ~phi in
    for _ = 1 to n do
      Format.printf "%a@." Prefs.Ranking.pp (Rim.Mallows.sample mal rng)
    done;
    0
  in
  let m_arg = Arg.(value & opt int 8 & info [ "m" ] ~docv:"M" ~doc:"Number of items.") in
  let phi_arg =
    Arg.(value & opt float 0.5 & info [ "phi" ] ~docv:"PHI" ~doc:"Mallows dispersion.")
  in
  let n_arg = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of samples.") in
  Cmd.v
    (Cmd.info "sample" ~doc:"Sample rankings from a Mallows model")
    Term.(const run $ m_arg $ phi_arg $ n_arg $ seed_arg)

let () =
  let info =
    Cmd.info "hardq" ~version:"1.0.0"
      ~doc:"Hard queries over probabilistic preferences (RIM-PPD)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info [ eval_cmd; query_cmd; topk_cmd; answers_cmd; sample_cmd ]))
