(* hardq-server — keep the engine and the synthetic PPDs resident and
   serve Boolean / Count-Session / Most-Probable-Session queries over
   newline-delimited JSON. See DESIGN.md for the wire protocol. *)

open Cmdliner

let address_conv =
  let parse s =
    match Server.Protocol.address_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a =
    Format.pp_print_string ppf (Server.Protocol.address_to_string a)
  in
  Arg.conv (parse, print)

let listen_arg =
  let doc =
    "Address to listen on: $(b,HOST:PORT), $(b,:PORT) (loopback, port 0 \
     picks an ephemeral port) or a filesystem path for a Unix-domain \
     socket."
  in
  Arg.(
    value
    & opt address_conv (Server.Protocol.Tcp ("127.0.0.1", 7199))
    & info [ "listen"; "l" ] ~docv:"ADDR" ~doc)

let jobs_arg =
  let doc = "Engine pool size (0 = one domain per available core)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cache_arg =
  let doc = "Answer-tier cache capacity (entries)." in
  Arg.(value & opt int 8192 & info [ "cache" ] ~docv:"N" ~doc)

let term_cache_arg =
  let doc =
    "Term-tier cache capacity (solved IE conjunctions shared across \
     queries over the same model; 0 disables the tier)."
  in
  Arg.(value & opt int 4096 & info [ "term-cache" ] ~docv:"N" ~doc)

let batch_window_arg =
  let doc =
    "Batch-scheduler gather window in milliseconds: admitted requests \
     with the same dataset, query, solver and seed wait up to this long \
     to be evaluated as one engine batch (0 = dispatch immediately). \
     Batching never changes answers."
  in
  Arg.(value & opt float 2. & info [ "batch-window-ms" ] ~docv:"MS" ~doc)

let batch_max_arg =
  let doc = "Flush a gather bucket once it holds this many requests." in
  Arg.(value & opt int 16 & info [ "batch-max" ] ~docv:"N" ~doc)

let kernel_arg =
  let parse s =
    match Hardq.Kernel.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf t = Format.pp_print_string ppf (Hardq.Kernel.to_string t) in
  let kconv = Arg.conv (parse, print) in
  let doc =
    "DP kernel of the exact solvers: $(b,flat) (arena-indexed, GC-free \
     inner loops; the default) or $(b,boxed) (the reference layout). \
     Answers are byte-identical either way."
  in
  Arg.(
    value & opt kconv Hardq.Kernel.default & info [ "kernel" ] ~docv:"KERNEL" ~doc)

let shards_arg =
  let doc =
    "Session-store shard count (1 = unsharded). With more than one \
     shard the server becomes a scatter-gather coordinator over \
     in-process worker shards: Count-Session scatters and sums, top-k \
     runs two-phase with cross-shard bound pruning, and replies carry \
     an additive $(b,shards) accounting block. Answers are \
     bit-identical at any shard count."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let intra_arg =
  let doc =
    "Default intra-query parallelism for requests without a \
     $(b,parallelism) field: solver calls may fan their own work across \
     the engine pool. Answers are bit-identical either way."
  in
  Arg.(value & opt bool true & info [ "intra" ] ~docv:"BOOL" ~doc)

let queue_arg =
  let doc =
    "Admission-queue bound: requests beyond it are shed immediately with \
     a typed $(b,overloaded) error."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let workers_arg =
  let doc =
    "Evaluator threads. The engine is thread-safe and single-flights \
     duplicate sub-problems, so workers evaluate batches concurrently."
  in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let max_connections_arg =
  let doc = "Connections beyond this are refused with $(b,overloaded)." in
  Arg.(value & opt int 1024 & info [ "max-connections" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Default per-request deadline in milliseconds, applied when a request \
     carries no $(b,timeout_ms) of its own (0 = none)."
  in
  Arg.(value & opt float 0. & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let metrics_json_arg =
  let doc =
    "Write the final observability snapshot (counters and latency \
     histograms for the whole serving path) to $(docv) when the server \
     drains."
  in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"PATH" ~doc)

let preload_arg =
  let doc =
    "Synthesize these datasets at startup instead of on first request \
     (repeatable; default sizes)."
  in
  Arg.(value & opt_all string [] & info [ "preload" ] ~docv:"NAME" ~doc)

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle log lines.")

let run listen jobs cache term_cache batch_window_ms batch_max shards intra
    kernel queue
    workers max_connections timeout_ms metrics_json preload quiet =
  let config =
    {
      (Server.default_config listen) with
      Server.jobs = (if jobs <= 0 then None else Some jobs);
      cache_capacity = cache;
      term_cache_capacity = term_cache;
      batch_window_ms;
      batch_max;
      shards = (if shards < 1 then 1 else shards);
      intra;
      kernel;
      queue_capacity = queue;
      workers;
      max_connections;
      default_timeout_ms = (if timeout_ms > 0. then Some timeout_ms else None);
      metrics_path = metrics_json;
      preload = List.map (fun name -> Server.Protocol.dataset name) preload;
      quiet;
    }
  in
  let server = Server.start config in
  Server.install_signal_handlers server;
  Server.await server;
  0

let cmd =
  let doc = "serve hard queries over resident probabilistic preferences" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Keeps one engine and a registry of named RIM-PPD instances \
         resident and answers Boolean, Count-Session and \
         Most-Probable-Session requests over newline-delimited JSON, with \
         bounded admission, per-request deadlines and graceful drain on \
         SIGTERM/SIGINT.";
      `S Manpage.s_examples;
      `Pre
        "  hardq-server --listen :7199 --jobs 0 --preload polls\n\
        \  echo '{\"op\":\"ping\"}' | nc 127.0.0.1 7199";
    ]
  in
  Cmd.v
    (Cmd.info "hardq-server" ~doc ~man)
    Term.(
      const run $ listen_arg $ jobs_arg $ cache_arg $ term_cache_arg
      $ batch_window_arg $ batch_max_arg $ shards_arg $ intra_arg $ kernel_arg
      $ queue_arg
      $ workers_arg $ max_connections_arg $ timeout_arg $ metrics_json_arg
      $ preload_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
