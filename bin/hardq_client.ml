(* hardq-client — one-shot client for hardq-server: send one request,
   print the reply JSON line on stdout. Exit 0 on an answered request,
   1 on a typed server error, 2 on usage/transport errors. *)

open Cmdliner

let address_conv =
  let parse s =
    match Server.Protocol.address_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a =
    Format.pp_print_string ppf (Server.Protocol.address_to_string a)
  in
  Arg.conv (parse, print)

let connect_arg =
  let doc = "Server address ($(b,HOST:PORT), $(b,:PORT) or a socket path)." in
  Arg.(
    value
    & opt address_conv (Server.Protocol.Tcp ("127.0.0.1", 7199))
    & info [ "connect"; "c" ] ~docv:"ADDR" ~doc)

let retries_arg =
  let doc = "Connection attempts before giving up (50 ms apart)." in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let op_arg =
  let doc = "Operation: $(b,eval), $(b,ping) or $(b,metrics)." in
  Arg.(
    value
    & opt (enum [ ("eval", `Eval); ("ping", `Ping); ("metrics", `Metrics) ]) `Eval
    & info [ "op" ] ~docv:"OP" ~doc)

let dataset_arg =
  let doc = "Dataset family: $(b,polls), $(b,movielens) or $(b,crowdrank)." in
  Arg.(value & opt string "polls" & info [ "dataset" ] ~docv:"NAME" ~doc)

let size_arg =
  let doc = "Dataset scale (server default when omitted)." in
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N" ~doc)

let sessions_arg =
  let doc = "Session count (server default when omitted)." in
  Arg.(value & opt (some int) None & info [ "sessions" ] ~docv:"N" ~doc)

let gen_seed_arg =
  let doc = "Dataset generator seed." in
  Arg.(value & opt (some int) None & info [ "dataset-seed" ] ~docv:"SEED" ~doc)

let query_arg =
  let doc =
    "Query text in the parser's concrete syntax; the dataset's showcase \
     query when omitted."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let task_arg =
  let doc = "Task: $(b,boolean), $(b,count) or $(b,top-k)." in
  Arg.(
    value
    & opt (enum [ ("boolean", `Boolean); ("count", `Count); ("top-k", `Top_k) ])
        `Boolean
    & info [ "task" ] ~docv:"TASK" ~doc)

let k_arg =
  let doc = "k for the top-k task." in
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc)

let solver_arg =
  let doc = "Solver name (see hardq --help for the list)." in
  Arg.(value & opt string "auto" & info [ "solver" ] ~docv:"SOLVER" ~doc)

let budget_arg =
  let doc = "CPU-seconds budget per solver invocation (0 = unlimited)." in
  Arg.(value & opt float 0. & info [ "budget" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Evaluation seed (approximate solvers)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let timeout_arg =
  let doc = "Per-request deadline in milliseconds (0 = none)." in
  Arg.(value & opt float 0. & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let per_session_arg =
  Arg.(
    value & flag
    & info [ "per-session" ] ~doc:"Include per-session marginals in the reply.")

let fail fmt = Printf.ksprintf (fun msg -> Printf.eprintf "hardq-client: %s\n" msg; 2) fmt

let run connect retries op dataset size sessions gen_seed query task k solver
    budget seed timeout_ms per_session =
  match Server.Client.connect ~retries (connect : Server.Protocol.address) with
  | client -> (
      Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
      match op with
      | `Ping ->
          if Server.Client.ping client then (print_endline "pong"; 0)
          else (Printf.eprintf "hardq-client: no pong\n"; 2)
      | `Metrics -> (
          match Server.Client.metrics client with
          | Ok snap -> print_endline (Server.Json.to_string snap); 0
          | Error msg -> fail "%s" msg)
      | `Eval -> (
          let query_text =
            match query with
            | Some q -> Some q
            | None -> Server.Registry.showcase_query dataset
          in
          match query_text with
          | None -> fail "no query given and %S has no showcase query" dataset
          | Some text -> (
              match Ppd.Parser.parse_result text with
              | Error msg -> fail "query: %s" msg
              | Ok q -> (
                  match Hardq.Solver.of_string solver with
                  | Error msg -> fail "%s" msg
                  | Ok solver ->
                  let task =
                    match task with
                    | `Boolean -> Engine.Request.Boolean
                    | `Count -> Engine.Request.Count
                    | `Top_k -> Engine.Request.top_k k
                  in
                  let spec =
                    {
                      Server.Protocol.ds_name = dataset;
                      ds_size = size;
                      ds_sessions = sessions;
                      ds_seed = gen_seed;
                    }
                  in
                  let e =
                    Server.Protocol.eval ~task ~solver ~budget ~seed
                      ?timeout_ms:(if timeout_ms > 0. then Some timeout_ms else None)
                      ~per_session spec q
                  in
                  let req =
                    { Server.Protocol.id = Some (Server.Json.Int 1); op = Eval e }
                  in
                  (match Server.Client.rpc_json client
                           (Server.Protocol.request_to_json req) with
                  | Ok json -> (
                      print_endline (Server.Json.to_string json);
                      match Server.Protocol.reply_of_json json with
                      | Ok { Server.Protocol.result = Err _; _ } -> 1
                      | Ok _ -> 0
                      | Error msg -> fail "bad reply: %s" msg)
                  | Error msg -> fail "%s" msg)))))
  | exception Unix.Unix_error (e, _, _) -> fail "connect: %s" (Unix.error_message e)

let cmd =
  let doc = "query a running hardq-server" in
  Cmd.v
    (Cmd.info "hardq-client" ~doc)
    Term.(
      const run $ connect_arg $ retries_arg $ op_arg $ dataset_arg $ size_arg
      $ sessions_arg $ gen_seed_arg $ query_arg $ task_arg $ k_arg $ solver_arg
      $ budget_arg $ seed_arg $ timeout_arg $ per_session_arg)

let () = exit (Cmd.eval' cmd)
